package engine_test

import (
	"context"
	"testing"

	"latch/internal/engine"
	"latch/internal/isa"
	"latch/internal/latch"
	"latch/internal/policy"
	"latch/internal/workload"
)

func TestReferenceRunsProgram(t *testing.T) {
	ref, err := engine.NewReference(policy.Default())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Machine == nil || ref.Engine == nil || ref.Shadow == nil {
		t.Fatal("reference wiring incomplete")
	}
	prog, err := isa.Assemble(`
		movi r1, 42
		sys  1       ; exit(42)
	`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := ref.RunProgram(context.Background(), prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
}

func TestReferenceTracksTaintPrecisely(t *testing.T) {
	ref, err := engine.NewReference(policy.Default())
	if err != nil {
		t.Fatal(err)
	}
	ref.Machine.Env.FileData = []byte{0x10, 0x20, 0x30, 0x40}
	prog, err := isa.Assemble(`
		li   r1, 0x3000
		movi r2, 4
		sys  2           ; read 4 tainted file bytes to 0x3000
		ldw  r3, [r1]
		jr   r3          ; tainted indirect jump: policy violation
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RunProgram(context.Background(), prog, 1000); err == nil {
		t.Fatal("tainted indirect jump not detected")
	}
	if !ref.Shadow.RangeTainted(0x3000, 4) {
		t.Fatal("file input not tainted in reference shadow")
	}
}

func TestRunProfileSessionSnapshot(t *testing.T) {
	p, err := workload.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	run := func() engine.Snapshot {
		b := &fakeBackend{cfg: latch.DefaultConfig()}
		_, s, err := engine.RunProfileSession(context.Background(), b, p, engine.RunOptions{Events: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		if s == nil || s.Module == nil || s.Shadow == nil {
			t.Fatal("session not returned")
		}
		return s.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed snapshots differ:\n%+v\n%+v", a, b)
	}
	if a.Events != 20_000 {
		t.Fatalf("snapshot events = %d, want 20000", a.Events)
	}
	if a.Mode != engine.ModeHardware {
		t.Fatalf("snapshot mode = %v", a.Mode)
	}
}

package engine

import (
	"latch/internal/latch"
	"latch/internal/policy"
	"latch/internal/shadow"
	"latch/internal/telemetry"
	"latch/internal/workload"
)

// Cycles is the unified cycle-category accounting shared by the
// integrations' cost models — the Figure 14 vocabulary.
type Cycles struct {
	Base    uint64 // native execution: one per instruction
	Libdft  uint64 // extra cycles from instrumented (software DIFT) execution
	Xfer    uint64 // context save/restore + code-cache loads
	FPCheck uint64 // exception-handler false-positive filtering
	CTCMiss uint64 // coarse-check miss penalties
	Scan    uint64 // clear-bit scans on return to hardware
}

// Total returns the modeled runtime.
func (c Cycles) Total() uint64 {
	return c.Base + c.Libdft + c.Xfer + c.FPCheck + c.CTCMiss + c.Scan
}

// Overhead returns the fractional overhead over native execution
// (Figure 13's y-axis; 0.6 means 60%).
func (c Cycles) Overhead() float64 {
	if c.Base == 0 {
		return 0
	}
	return float64(c.Total())/float64(c.Base) - 1
}

// Session owns everything one backend run shares with every other scheme:
// the latch module and its shadow taint state, the workload profile behind
// the stream, the telemetry wiring, the event cursor, the
// hardware/software epoch and trap state machine, and the unified cycle
// accounting. Backends keep only their policy-specific state.
type Session struct {
	Module   *latch.Module
	Shadow   *shadow.Shadow
	Profile  workload.Profile
	Observer telemetry.Observer

	// Policy is the validated taint policy of the current run; it travels
	// with the session (RunProfileSession installs it after validation,
	// Recycle clears it with the rest of the per-run state).
	Policy policy.Policy

	// Target is the requested stream length — a sizing hint for backends;
	// the stream may end earlier.
	Target uint64
	// Events counts consumed stream events (equivalently, committed
	// instructions); the driver advances it before each Step.
	Events uint64

	// Cycles accumulates the run's integer cycle categories. The Libdft
	// category accrues fractionally (per-instruction slowdown extras) and
	// is folded in by CycleReport.
	Cycles Cycles

	// Epoch/trap counters.
	HWInstrs   uint64 // instructions executed under hardware monitoring
	SWInstrs   uint64 // instructions executed under software DIFT
	Switches   uint64 // hardware -> software transfers
	Returns    uint64 // software -> hardware transfers
	Traps      uint64 // positives taken in hardware mode
	FalseTraps uint64 // traps dismissed by the precise filter

	mode         Mode
	sinceTaint   uint64
	swFrac       float64 // fractional extra-cycle accumulator (libdft)
	swExtra      float64 // per-instruction extra cycles in software mode
	costs        Costs
	codeCacheLat uint64
	missPenalty  uint64
	lastMisses   uint64
}

// Recycle returns the session to its just-constructed state so it can carry
// another run without reallocating: the shadow taint state is reset onto its
// page free lists, the module's coarse state (CTT, page-domain counts, TRF,
// caches) is cleared, and every per-run counter, cycle category, and the
// epoch state machine are zeroed. The configuration-derived miss penalty is
// retained — a recycled session only serves backends with the geometry it
// was built for, which RunProfileSession enforces.
func (s *Session) Recycle() {
	s.Shadow.Reset()
	s.Module.Reset()
	s.Observer = nil
	s.Module.SetObserver(nil)
	s.Profile = workload.Profile{}
	s.Policy = policy.Policy{}
	s.Target = 0
	s.Events = 0
	s.Cycles = Cycles{}
	s.HWInstrs = 0
	s.SWInstrs = 0
	s.Switches = 0
	s.Returns = 0
	s.Traps = 0
	s.FalseTraps = 0
	s.mode = ModeHardware
	s.sinceTaint = 0
	s.swFrac = 0
	s.swExtra = 0
	s.costs = Costs{}
	s.codeCacheLat = 0
	s.lastMisses = 0
}

// AttachObserver wires obs into the session and its module. Callers choose
// the moment: profile-driven runs attach after stats reset so the observer
// sees exactly the measured stream; program-driven runs attach at
// construction.
func (s *Session) AttachObserver(obs telemetry.Observer) {
	s.Observer = obs
	s.Module.SetObserver(obs)
}

// ConfigureEpochs arms the two-mode state machine: the shared cost table,
// the per-instruction software-mode extra (slowdown − 1), and the
// code-cache load latency charged on each hardware->software transfer.
func (s *Session) ConfigureEpochs(costs Costs, swExtra float64, codeCacheLat uint64) {
	s.costs = costs
	s.swExtra = swExtra
	s.codeCacheLat = codeCacheLat
}

// Mode returns the current execution mode.
func (s *Session) Mode() Mode { return s.mode }

// CheckMem performs one coarse memory check through the module, charging
// the CTC miss penalty for any misses the check caused (§6.1).
func (s *Session) CheckMem(addr uint32, size int) latch.CheckResult {
	res := s.Module.CheckMem(addr, size)
	if now := s.Module.Stats().CTCCheckMisses; now != s.lastMisses {
		s.Cycles.CTCMiss += (now - s.lastMisses) * s.missPenalty
		s.lastMisses = now
	}
	return res
}

// Trap charges one exception-handler false-positive filtering pass
// (§5.1.2) for a hardware-mode positive.
func (s *Session) Trap() {
	s.Traps++
	s.Cycles.FPCheck += s.costs.FPCheck
}

// DismissTrap records a coarse false positive rejected by the precise
// filter; hardware mode continues.
func (s *Session) DismissTrap() {
	s.FalseTraps++
}

// SwitchToSoftware performs the hardware->software transfer of a confirmed
// trap: context save/restore plus the code-cache load, the epoch
// transition, and the trapping instruction's re-execution under
// instrumentation.
func (s *Session) SwitchToSoftware() {
	s.Switches++
	s.Cycles.Xfer += 2*s.costs.CtxSwitch + s.codeCacheLat
	s.mode = ModeSoftware
	if s.Observer != nil {
		s.Observer.EpochTransition(telemetry.ModeSoftware, s.Events)
	}
	s.sinceTaint = 0
	s.swFrac += s.swExtra
}

// SoftwareStep accounts one software-mode instruction and advances the
// §5.1.3 timeout. It reports true when the timeout fired: the backend then
// performs any scheme-specific rewrites and calls ReturnToHardware.
func (s *Session) SoftwareStep(tainted bool) bool {
	s.swFrac += s.swExtra
	if tainted {
		s.sinceTaint = 0
		return false
	}
	s.sinceTaint++
	return s.sinceTaint >= s.costs.TimeoutInstrs
}

// ReturnToHardware performs the software->hardware transition: scan the
// resident clear bits (§5.1.4), restore the native context, resume
// hardware monitoring.
func (s *Session) ReturnToHardware() {
	scanned := s.Module.ScanResidentClears()
	s.Cycles.Scan += scanned * s.costs.ScanPerDomain
	s.Cycles.Xfer += s.costs.CtxSwitch
	s.Returns++
	s.mode = ModeHardware
	if s.Observer != nil {
		s.Observer.EpochTransition(telemetry.ModeHardware, s.Events)
	}
	s.sinceTaint = 0
}

// CycleReport returns the run's cycle breakdown with the fractional
// software-mode accumulator folded into the Libdft category.
func (s *Session) CycleReport() Cycles {
	c := s.Cycles
	c.Libdft = uint64(s.swFrac)
	return c
}

// Snapshot is a comparable (==) summary of everything a Session accumulated
// over a run: the stream cursor, the epoch/trap counters, the folded cycle
// breakdown, and the module's coarse-state statistics. Two runs of the same
// backend over the same seeded stream must produce identical Snapshots —
// the replayability contract the differential checker asserts.
type Snapshot struct {
	Events     uint64
	Mode       Mode
	HWInstrs   uint64
	SWInstrs   uint64
	Switches   uint64
	Returns    uint64
	Traps      uint64
	FalseTraps uint64
	Cycles     Cycles
	Latch      latch.Stats
}

// Snapshot captures the session's current accumulated state.
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		Events:     s.Events,
		Mode:       s.mode,
		HWInstrs:   s.HWInstrs,
		SWInstrs:   s.SWInstrs,
		Switches:   s.Switches,
		Returns:    s.Returns,
		Traps:      s.Traps,
		FalseTraps: s.FalseTraps,
		Cycles:     s.CycleReport(),
		Latch:      s.Module.Stats(),
	}
}

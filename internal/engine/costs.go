package engine

import "latch/internal/latch"

// Costs is the engine-level table of the cycle-cost constants the
// integrations share. The paper's §6.1 numbers live in exactly one place:
// here, except the CTC miss penalty, whose single definition is
// latch.DefaultCTCMissPenalty (it parameterizes the module itself and is
// surfaced in this table for completeness).
type Costs struct {
	// CtxSwitch is the cost of saving/restoring the native context on each
	// direction of a mode switch (getcontext/setcontext, §6.1).
	CtxSwitch uint64
	// FPCheck is the exception-handler cost of validating one coarse
	// positive against the precise state (ltnt + tagmap lookup, §5.1.2).
	FPCheck uint64
	// ScanPerDomain is the cost of checking one clear-bit-flagged domain
	// during the return-to-hardware scan (§5.1.4).
	ScanPerDomain uint64
	// CodeCacheLat is the code-cache load latency charged on each
	// hardware->software transfer when the workload profile does not carry
	// a calibrated per-benchmark value.
	CodeCacheLat uint64
	// TimeoutInstrs is the software-mode timeout: after this many
	// instructions without touching taint, control returns to hardware
	// (1000 in the paper, §5.1.3).
	TimeoutInstrs uint64
	// CTCMissPenalty is the cycle cost of a CTC miss. The value charged at
	// run time comes from the module's own latch.Config, so geometry
	// ablations stay consistent with the module they sweep.
	CTCMissPenalty uint64
}

// DefaultCosts returns the paper's constants.
func DefaultCosts() Costs {
	return Costs{
		CtxSwitch:      400,
		FPCheck:        120,
		ScanPerDomain:  20,
		CodeCacheLat:   800,
		TimeoutInstrs:  1000,
		CTCMissPenalty: latch.DefaultCTCMissPenalty,
	}
}

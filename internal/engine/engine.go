// Package engine is the shared substrate under the LATCH integrations
// (§5): the per-run Session owning the latch module, shadow taint state,
// trace cursor, and telemetry wiring; the hardware/software epoch and trap
// state machine with its unified Figure 14 cycle accounting; and a
// name-keyed registry of Backend implementations.
//
// The paper evaluates one LATCH module under three integrations — S-LATCH
// (§5.1), P-LATCH (§5.2), H-LATCH (§5.3). Each differs only in policy:
// what to do with a stream event, when a coarse positive traps, and which
// numbers the run reports. Everything else — module construction, the
// generator-driven stream, mode switching, cost charging — is shared and
// lives here. Adding a fourth integration is one package: implement
// Backend, call Register from init, and the experiment harness, the public
// facade, and the CLI `-backend` flag pick it up by name.
package engine

import (
	"context"
	"fmt"

	"latch/internal/latch"
	"latch/internal/policy"
	"latch/internal/shadow"
	"latch/internal/telemetry"
	"latch/internal/trace"
	"latch/internal/workload"
)

// Mode is the current execution layer of a two-mode integration.
type Mode int

// Modes.
const (
	ModeHardware Mode = iota
	ModeSoftware
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHardware {
		return "hardware"
	}
	return "software"
}

// Backend is one integration of the LATCH module. It owns the
// scheme-specific policy — the per-event step, when to trap, and how to
// report the run — while the engine owns the Session's shared machinery.
// A Backend instance serves exactly one run; factories registered with
// Register produce a fresh one per run.
type Backend interface {
	// Name is the registry key ("slatch", "platch", "hlatch", ...).
	Name() string
	// Config is the hardware geometry the run's module is built with.
	Config() latch.Config
	// Init prepares per-run state once the Session (module, shadow state,
	// profile, observer) exists and before the first event. Returning an
	// error aborts the run.
	Init(s *Session) error
	// Step consumes one stream event. The Session's Events cursor has
	// already advanced to include ev.
	Step(s *Session, ev trace.Event)
	// Finish produces the run's result after the last event.
	Finish(s *Session) Result
}

// BatchBackend is the optional Backend extension for integrations that
// consume the stream in batches — the software analog of the paper's
// commit-stream FIFO, where the monitor drains whole log chunks per
// activation instead of taking one call per committed instruction.
// StepBatch(s, evs) must be observably equivalent to, for each event in
// order, advancing s.Events by one and then calling Step: under the batched
// driver the backend owns the cursor, so implementations whose per-event
// logic reads s.Events (pending-window filters, epoch transitions) must
// advance it before processing each event.
type BatchBackend interface {
	Backend
	StepBatch(s *Session, evs []trace.Event)
}

// Sharded is the optional Backend extension for integrations whose monitor
// fans out over N parallel shards (the concurrent P-LATCH backend). The
// CLIs' -shards flags and the experiment harness's Shards option reach any
// registered backend through this interface. SetShards must be called
// before Init; implementations reject later calls.
type Sharded interface {
	Backend
	// SetShards fixes the monitor shard count for this run (n >= 1).
	SetShards(n int) error
}

// Column is one headline metric of a backend result, for scheme-agnostic
// tabulation.
type Column struct {
	Label string
	Value any
}

// Result is the outcome of one backend run. Concrete backends return
// richer structs; this surface is what the registry-driven harness and the
// CLI render without knowing the scheme.
type Result interface {
	// BenchmarkName names the workload the run consumed.
	BenchmarkName() string
	// EventCount is the number of stream events consumed.
	EventCount() uint64
	// CheckCount is the number of coarse memory checks performed (zero
	// when the scheme does not report them).
	CheckCount() uint64
	// Columns lists the scheme's headline metrics in stable order.
	Columns() []Column
}

// CancelCheckEvents is the profile driver's cancellation granularity: the
// run's context is polled every this many stream events (a power of two, so
// the check is a mask test). A canceled run stops — with its backend fully
// finalized, monitor shards joined — within at most CancelCheckEvents events
// of the cancellation.
const CancelCheckEvents = 4096

// EventBatchSize is the profile driver's delivery batch: for BatchBackend
// integrations, events accumulate in a fixed buffer handed over in slices of
// at most this many. It divides CancelCheckEvents, so batch boundaries land
// exactly on cancellation-poll boundaries and the poll granularity is
// unchanged.
const EventBatchSize = 512

// RunOptions parameterizes one profile-driven run.
type RunOptions struct {
	// Events is the requested stream length.
	Events uint64
	// Observer, when non-nil, receives the run's telemetry: the module's
	// check-path events plus whatever the backend emits (epoch
	// transitions, queue stalls). Observers never affect results.
	Observer telemetry.Observer
	// Session, when non-nil, is a recycled Session to run on instead of
	// building a fresh one — the serving path reuses each worker's session
	// the way the mem/shadow free lists reuse pages. It is Recycled before
	// use and its module geometry must match the backend's Config.
	Session *Session
	// Policy is the run's taint policy. For profile-driven runs only the
	// Sampling spec has an effect (it selects which of the profile's
	// taint runs are materialized and observed tainted); the zero value
	// — sampling disabled — reproduces the unsampled pipeline exactly.
	// The policy is validated on every run, including recycled sessions,
	// and travels with the Session for the run's duration.
	Policy policy.Policy
}

// RunProfile streams one calibrated workload profile through a backend:
// build the shared Session, let the backend initialize, feed it the
// generator's event stream, and collect its result. This is the single
// driver loop the per-scheme packages used to duplicate.
//
// Cancellation: ctx is polled every CancelCheckEvents events. On
// cancellation the stream stops, the backend is still finalized (so
// concurrent backends join their monitor shards and leak nothing), the
// partial result is discarded, and ctx.Err() is returned.
func RunProfile(ctx context.Context, b Backend, p workload.Profile, opts RunOptions) (Result, error) {
	res, _, err := RunProfileSession(ctx, b, p, opts)
	return res, err
}

// RunProfileSession is RunProfile returning the run's Session alongside the
// result, so callers can capture a Snapshot of the shared state — the
// differential checker compares Snapshots across replays of the same seed.
func RunProfileSession(ctx context.Context, b Backend, p workload.Profile, opts RunOptions) (Result, *Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Policy.Validate(); err != nil {
		return nil, nil, fmt.Errorf("engine: %w", err)
	}
	s := opts.Session
	if s != nil {
		if got, want := s.Module.Config(), b.Config(); got != want {
			return nil, nil, fmt.Errorf("engine: recycled session geometry %+v does not match backend %s config %+v", got, b.Name(), want)
		}
		// Recycle clears the previous run's policy; the validated one for
		// this run is installed below.
		s.Recycle()
	} else {
		var err error
		if s, err = NewSession(b.Config()); err != nil {
			return nil, nil, err
		}
	}
	s.Policy = opts.Policy
	g, err := workload.NewSampledGeneratorOn(p, s.Shadow, opts.Policy.Sampling)
	if err != nil {
		return nil, nil, err
	}
	// Layout materialization populated the coarse state through the shadow
	// watchers; measure only the steady-state reference stream. The
	// observer attaches after the reset for the same reason: it sees
	// exactly the measured stream.
	s.Module.ResetStats()
	s.lastMisses = 0
	s.AttachObserver(opts.Observer)
	s.Profile = p
	s.Target = opts.Events
	// A context canceled before the stream starts aborts here, before the
	// backend spins up any per-run machinery (monitor shards included).
	if err := ctx.Err(); err != nil {
		return nil, s, err
	}
	if err := b.Init(s); err != nil {
		return nil, nil, err
	}
	done := ctx.Done()
	if bb, ok := b.(BatchBackend); ok {
		// Batched delivery: identical events, identical order, identical
		// cursor positions — one StepBatch call per buffer instead of one
		// interface call per event. The generator drains the buffer (via
		// trace.Flusher) before every shadow mutation, so each event is
		// checked against the same state as under per-event delivery.
		bs := &batchingSink{bb: bb, s: s, g: g, done: done}
		g.Run(opts.Events, bs)
		// A canceled run drops the undelivered tail, exactly as the
		// per-event driver stops at the poll boundary.
		if !g.Stopped() {
			bs.Flush()
		}
	} else {
		g.Run(opts.Events, trace.SinkFunc(func(ev trace.Event) {
			s.Events++
			b.Step(s, ev)
			if s.Events&(CancelCheckEvents-1) == 0 && done != nil {
				select {
				case <-done:
					g.Stop()
				default:
				}
			}
		}))
	}
	// Finalize unconditionally: for sharded backends Finish closes the
	// rings and joins the monitor goroutines, which must happen on the
	// cancellation path too.
	res := b.Finish(s)
	if g.Stopped() {
		return nil, s, ctx.Err()
	}
	return res, s, nil
}

// batchingSink is the profile driver's buffering sink for BatchBackend
// integrations: the commit-stream FIFO between the generator and the
// monitor. Events accumulate in a fixed buffer delivered in one StepBatch
// call when full — or earlier, when the generator calls Flush before
// mutating the shadow state. Cancellation is polled on the flush after each
// CancelCheckEvents-sized stretch of the stream (barrier flushes shift batch
// boundaries, so the poll keys off a watermark rather than an alignment
// mask).
type batchingSink struct {
	bb       BatchBackend
	s        *Session
	g        *workload.Generator
	done     <-chan struct{}
	buf      [EventBatchSize]trace.Event
	n        int
	lastPoll uint64
}

// Consume implements trace.Sink.
func (k *batchingSink) Consume(ev trace.Event) {
	k.buf[k.n] = ev
	k.n++
	if k.n == EventBatchSize {
		k.Flush()
	}
}

// Flush implements trace.Flusher: deliver the buffered events now.
func (k *batchingSink) Flush() {
	if k.n == 0 {
		return
	}
	k.bb.StepBatch(k.s, k.buf[:k.n])
	k.n = 0
	if k.s.Events-k.lastPoll >= CancelCheckEvents && k.done != nil {
		k.lastPoll = k.s.Events
		select {
		case <-k.done:
			k.g.Stop()
		default:
		}
	}
}

// RunScheme runs the named registered backend, in its paper-default
// configuration, over one workload profile.
func RunScheme(ctx context.Context, name string, p workload.Profile, opts RunOptions) (Result, error) {
	sch, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return RunProfile(ctx, sch.New(), p, opts)
}

// NewSession builds the per-run state every backend shares: the
// byte-precise shadow taint state and the latch module attached to it.
// Profile-driven runs go through RunProfile, which also owns the stream
// cursor; program-driven runs (the co-simulations) drive Step themselves.
func NewSession(cfg latch.Config) (*Session, error) {
	sh, err := shadow.New(cfg.DomainSize)
	if err != nil {
		return nil, err
	}
	m, err := latch.New(cfg, sh)
	if err != nil {
		return nil, err
	}
	return &Session{
		Module:      m,
		Shadow:      sh,
		missPenalty: cfg.CTCMissPenalty,
	}, nil
}

package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Scheme is a registered integration: a display title plus a factory
// producing a fresh, paper-default-configured Backend for one run.
// Integrations register themselves from package init (database/sql driver
// style); consumers — the experiment harness, the facade, the CLIs —
// select them by name.
type Scheme struct {
	Name  string
	Title string
	New   func() Backend
}

var (
	regMu   sync.RWMutex
	schemes = make(map[string]Scheme)
)

// Register adds a scheme to the registry. It panics on an empty name, a
// nil factory, or a duplicate name — registration happens at init time,
// where failing loudly beats failing late.
func Register(s Scheme) {
	if s.Name == "" || s.New == nil {
		panic("engine: Register with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := schemes[s.Name]; dup {
		panic(fmt.Sprintf("engine: backend %q registered twice", s.Name))
	}
	schemes[s.Name] = s
}

// Lookup finds a registered scheme by name.
func Lookup(name string) (Scheme, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := schemes[name]
	if !ok {
		return Scheme{}, fmt.Errorf("engine: unknown backend %q (registered: %v)", name, namesLocked())
	}
	return s, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(schemes))
	for n := range schemes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

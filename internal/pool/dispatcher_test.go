package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDispatcherRunsEveryAcceptedJob(t *testing.T) {
	d := NewDispatcher(4, 16)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		if err := d.Submit(context.Background(), func(int) { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	d.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 jobs", got)
	}
}

func TestDispatcherTrySubmitShedsWhenFull(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	ok, err := d.TrySubmit(func(int) { close(started); <-block })
	if !ok || err != nil {
		t.Fatalf("first TrySubmit: %v %v", ok, err)
	}
	<-started // worker busy; queue is now empty

	// Fill the single queue slot, then the next offer must shed.
	ok, err = d.TrySubmit(func(int) {})
	if !ok || err != nil {
		t.Fatalf("queue-filling TrySubmit: %v %v", ok, err)
	}
	ok, err = d.TrySubmit(func(int) { t.Error("shed job ran") })
	if err != nil {
		t.Fatalf("TrySubmit: %v", err)
	}
	if ok {
		t.Fatal("TrySubmit accepted into a full queue")
	}
	close(block)
}

func TestDispatcherSubmitHonorsContext(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := d.Submit(context.Background(), func(int) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := d.Submit(context.Background(), func(int) {}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := d.Submit(ctx, func(int) { t.Error("canceled submit ran") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(block)
}

func TestDispatcherCloseDrainsAndRejects(t *testing.T) {
	d := NewDispatcher(2, 8)
	var ran atomic.Int64
	gate := make(chan struct{})
	for i := 0; i < 8; i++ {
		if err := d.Submit(context.Background(), func(int) { <-gate; ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() { d.Close(); close(done) }()

	select {
	case <-done:
		t.Fatal("Close returned before accepted jobs drained")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	<-done
	if got := ran.Load(); got != 8 {
		t.Fatalf("drained %d of 8 accepted jobs", got)
	}

	if _, err := d.TrySubmit(func(int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close: %v, want ErrClosed", err)
	}
	if err := d.Submit(context.Background(), func(int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

func TestDispatcherWorkerIndexesAreStableAndDisjoint(t *testing.T) {
	const workers = 3
	d := NewDispatcher(workers, 64)
	var mu sync.Mutex
	active := make(map[int]int) // worker -> concurrent jobs
	var maxIdx atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		if err := d.Submit(context.Background(), func(w int) {
			defer wg.Done()
			if int64(w) > maxIdx.Load() {
				maxIdx.Store(int64(w))
			}
			mu.Lock()
			active[w]++
			if active[w] > 1 {
				t.Errorf("worker %d ran two jobs concurrently", w)
			}
			mu.Unlock()
			time.Sleep(time.Microsecond)
			mu.Lock()
			active[w]--
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	d.Close()
	if maxIdx.Load() >= workers {
		t.Fatalf("worker index %d out of range [0,%d)", maxIdx.Load(), workers)
	}
}

package pool

import (
	"context"
	"errors"
	"sync"
)

// ErrClosed is returned by Dispatcher.Submit and TrySubmit after Close has
// begun: the queue no longer accepts work, though already-accepted jobs
// still drain.
var ErrClosed = errors.New("pool: dispatcher closed")

// Dispatcher is the long-lived counterpart of Run: a fixed set of worker
// goroutines pulling jobs off one bounded queue. Run fans a known batch out
// and joins; a Dispatcher serves an open-ended stream of jobs arriving at
// unpredictable times — the shape a server needs. The bounded queue is the
// backpressure mechanism: when it is full, TrySubmit refuses immediately so
// the caller can shed load (HTTP 429) instead of queueing unboundedly.
//
// Each worker is identified by an index 0..workers-1, passed to every job
// it runs. Jobs owned by the same worker never overlap, which is what lets
// callers pin per-worker state (a recycled engine session, for instance)
// without locking.
type Dispatcher struct {
	jobs    chan func(worker int)
	wg      sync.WaitGroup
	workers int

	// mu protects closed and orders every send against the channel close:
	// senders hold it shared for the duration of their send, Close takes it
	// exclusively before closing the channel, so a send can never race the
	// close.
	mu     sync.RWMutex
	closed bool
}

// NewDispatcher starts Size(workers) workers over a queue of depth queue
// (minimum 1). Workers live until Close.
func NewDispatcher(workers, queue int) *Dispatcher {
	workers = Size(workers)
	if queue < 1 {
		queue = 1
	}
	d := &Dispatcher{
		jobs:    make(chan func(worker int), queue),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go func(worker int) {
			defer d.wg.Done()
			for job := range d.jobs {
				job(worker)
			}
		}(w)
	}
	return d
}

// Workers reports the number of worker goroutines.
func (d *Dispatcher) Workers() int { return d.workers }

// QueueDepth reports the queue's capacity.
func (d *Dispatcher) QueueDepth() int { return cap(d.jobs) }

// Queued reports the number of jobs accepted but not yet picked up by a
// worker. It is a snapshot for telemetry, racy by nature.
func (d *Dispatcher) Queued() int { return len(d.jobs) }

// TrySubmit offers job to the queue without blocking. It reports false when
// the queue is full — the caller should shed the request — and ErrClosed
// after Close.
func (d *Dispatcher) TrySubmit(job func(worker int)) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return false, ErrClosed
	}
	select {
	case d.jobs <- job:
		return true, nil
	default:
		return false, nil
	}
}

// Submit enqueues job, blocking until there is room or the context is
// canceled, and returns ErrClosed once the dispatcher has closed. Unlike
// TrySubmit it waits out a full queue, which is the right behavior for
// trusted internal producers. A Submit blocked on a full queue delays a
// concurrent Close until its job lands (workers are still draining, so the
// wait is bounded).
func (d *Dispatcher) Submit(ctx context.Context, job func(worker int)) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	select {
	case d.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting new jobs and blocks until every accepted job has
// finished — the graceful-drain half of server shutdown. Close is
// idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.jobs)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

// Package pool provides the bounded worker pool behind the experiment
// harness's parallel fan-out. Jobs are independent, index-addressed units
// of work (one benchmark of one experiment pass, typically); the pool runs
// them on a fixed number of goroutines and the caller reassembles results
// by index, so output order — and therefore every rendered table — is
// identical no matter how many workers execute the jobs or how the
// scheduler interleaves them.
//
// Determinism contract: jobs must not share mutable state (each owns its
// generator, module, and RNG) and must write results only to their own
// index. Under that contract Run(1, ...) and Run(n, ...) are
// observationally identical on success, which TestParallelMatchesSerial in
// internal/experiments enforces end to end.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Size normalizes a worker-count request: values <= 0 select one worker
// per available CPU (runtime.GOMAXPROCS).
func Size(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes jobs 0..n-1 on at most Size(workers) goroutines and blocks
// until all of them finish. Every job runs exactly once even if another
// job fails; the returned error is the lowest-index failure, so error
// reporting is as deterministic as the results. workers == 1 runs the jobs
// inline on the calling goroutine in index order — the serial reference
// path the parallel schedule must reproduce.
func Run(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Size(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
		return firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return firstError(errs)
}

// Map runs n jobs through Run and collects their results in index order.
func Map[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := job(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// firstError returns the lowest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSerialRunsInIndexOrder(t *testing.T) {
	var order []int
	err := Run(1, 8, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestMapResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestAllJobsRunDespiteErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := Run(workers, 10, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: only %d of 10 jobs ran", workers, ran.Load())
		}
	}
}

func TestConcurrencyIsBounded(t *testing.T) {
	const workers, jobs = 3, 64
	var inflight, peak atomic.Int64
	var mu sync.Mutex
	err := Run(workers, jobs, func(i int) error {
		n := inflight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		inflight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs with %d workers", p, workers)
	}
}

func TestSize(t *testing.T) {
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(0) = %d", got)
	}
	if got := Size(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(-3) = %d", got)
	}
	if got := Size(5); got != 5 {
		t.Fatalf("Size(5) = %d", got)
	}
}

func TestEmptyAndSingleJob(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	var ran int
	if err := Run(8, 1, func(i int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("single job: ran=%d err=%v", ran, err)
	}
}

func TestParallelSumMatchesSerial(t *testing.T) {
	// The same fold computed serially and in parallel over per-index slots
	// must agree bit for bit — the pool's core determinism property.
	sum := func(workers int) int64 {
		out, err := Map(workers, 1000, func(i int) (int64, error) {
			return int64(i)*7919 + 13, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var s int64
		for _, v := range out {
			s += v
		}
		return s
	}
	if a, b := sum(1), sum(16); a != b {
		t.Fatalf("serial %d != parallel %d", a, b)
	}
}

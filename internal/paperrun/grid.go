// Package paperrun is the reproducible experiment-grid pipeline behind
// `latch-paper` (ROADMAP item 5): a declarative grid file names the cells
// of a paper-style evaluation — backend sweeps, cplatch shard sweeps,
// cache-geometry sweeps, selective-tracing fractions, and whole catalog
// experiments — with a repeat count, and the pipeline drives the latch.Run
// facade and the internal/experiments runner through every cell, once per
// repeat under a distinct derived seed.
//
// Everything that lands under csv/ in a run tree sits on the deterministic
// side of the determinism boundary (see internal/experiments.JobStat): a
// sample is a pure function of (grid, cell, variant, workload, repeat), so
// re-running the same grid produces byte-identical CSV trees — `make
// paper-smoke` and TestExecuteByteIdentical pin this. Wall-clock and
// machine facts live only in manifest.json, logs/, and the BENCH history.
package paperrun

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"latch"
	"latch/internal/experiments"
)

// Cell kinds.
const (
	// KindBackend runs registered backends through the latch.Run facade:
	// every (backend, shard count, sampling fraction, workload) combination
	// is one variant.
	KindBackend = "backend"
	// KindGeometry sweeps one scheme-specific configuration axis (cache
	// geometry, timeout, queue depth) through the scheme's own Run.
	KindGeometry = "geometry"
	// KindExperiment regenerates catalog experiments through the
	// internal/experiments runner, once per repeat under a distinct seed
	// salt, and flattens the rendered tables into numeric samples.
	KindExperiment = "experiment"
)

// geometryAxes maps each sweepable configuration axis to the scheme whose
// config carries it.
var geometryAxes = map[string]string{
	"ctc_entries": "hlatch",
	"domain_size": "hlatch",
	"timeout":     "slatch",
	"queue_depth": "platch",
}

// Cell is one experiment of the grid. Which fields apply depends on Kind;
// Validate rejects contradictions up front so a bad grid fails before any
// cell has burned time.
type Cell struct {
	// ID names the cell; it becomes the csv/<id>.csv file name and the
	// first CSV column. Required, unique within the grid.
	ID string `json:"id"`
	// Kind selects the cell machinery: backend, geometry, or experiment.
	Kind string `json:"kind"`

	// Backends lists registered integration names (backend cells).
	Backends []string `json:"backends,omitempty"`
	// Workloads lists calibrated profile names (backend and geometry
	// cells).
	Workloads []string `json:"workloads,omitempty"`
	// Shards, when non-empty, sweeps the monitor shard count of every
	// listed backend (the concurrent cplatch integration).
	Shards []int `json:"shards,omitempty"`
	// SampleFractions, when non-empty, sweeps the selective-tracing
	// source-sampling fraction in [0, 1].
	SampleFractions []float64 `json:"sample_fractions,omitempty"`

	// Axis is the swept configuration parameter of a geometry cell:
	// ctc_entries or domain_size (H-LATCH), timeout (S-LATCH), or
	// queue_depth (P-LATCH). The scheme is implied by the axis.
	Axis string `json:"axis,omitempty"`
	// Values are the axis values to sweep.
	Values []int `json:"values,omitempty"`

	// Experiments lists catalog experiment ids (experiment cells).
	Experiments []string `json:"experiments,omitempty"`
	// Workers bounds the experiment runner's worker pool; 0 is one per
	// CPU. Results are identical for every value.
	Workers int `json:"workers,omitempty"`

	// Events overrides the grid's stream length for this cell.
	Events uint64 `json:"events,omitempty"`
	// Headline names the metric whose per-variant mean this cell
	// contributes to BENCH_history.json. Empty keeps the cell out of the
	// history headline.
	Headline string `json:"headline,omitempty"`
}

// Grid is the declarative description of one full paper run.
type Grid struct {
	// Name labels the grid in manifests and the BENCH history.
	Name string `json:"name"`
	// Repeats is how many independently seeded times every variant runs;
	// the analyzer's dispersion statistics are across repeats. At least 1.
	Repeats int `json:"repeats"`
	// BaseSeed roots every derived per-repeat seed. Two runs of the same
	// grid file are byte-identical; change BaseSeed to sample a fresh set
	// of streams.
	BaseSeed int64 `json:"base_seed"`
	// Events is the default stream length for cells that do not override
	// it; 0 selects latch.DefaultRunEvents.
	Events uint64 `json:"events,omitempty"`
	// Cells are the experiments of the grid, run in order.
	Cells []Cell `json:"cells"`
}

// LoadGrid parses and validates a grid file. The returned hash is the
// SHA-256 of the raw bytes — the manifest records it so an analysis is
// tied to the exact grid that produced the data.
func LoadGrid(raw []byte) (Grid, string, error) {
	var g Grid
	if err := json.Unmarshal(raw, &g); err != nil {
		return Grid{}, "", fmt.Errorf("paperrun: parse grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return Grid{}, "", err
	}
	sum := sha256.Sum256(raw)
	return g, hex.EncodeToString(sum[:]), nil
}

// Validate reports the first problem with the grid.
func (g Grid) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("paperrun: grid needs a name")
	}
	if g.Repeats < 1 {
		return fmt.Errorf("paperrun: grid %s: repeats must be at least 1, got %d", g.Name, g.Repeats)
	}
	if len(g.Cells) == 0 {
		return fmt.Errorf("paperrun: grid %s has no cells", g.Name)
	}
	seen := map[string]bool{}
	for i, c := range g.Cells {
		if c.ID == "" {
			return fmt.Errorf("paperrun: grid %s: cell %d has no id", g.Name, i)
		}
		if seen[c.ID] {
			return fmt.Errorf("paperrun: grid %s: duplicate cell id %q", g.Name, c.ID)
		}
		seen[c.ID] = true
		if err := c.validate(); err != nil {
			return fmt.Errorf("paperrun: grid %s: cell %s: %w", g.Name, c.ID, err)
		}
	}
	return nil
}

func (c Cell) validate() error {
	switch c.Kind {
	case KindBackend:
		if len(c.Backends) == 0 || len(c.Workloads) == 0 {
			return fmt.Errorf("backend cells need backends and workloads")
		}
		known := map[string]bool{}
		for _, b := range latch.Backends() {
			known[b] = true
		}
		for _, b := range c.Backends {
			if !known[b] {
				return fmt.Errorf("unknown backend %q (registered: %v)", b, latch.Backends())
			}
		}
		for _, s := range c.Shards {
			if s < 1 {
				return fmt.Errorf("shard counts must be positive, got %d", s)
			}
			// A shard sweep applies to every backend of the cell, so each
			// must actually support shard geometry — the facade's own
			// validation catches this before any cell has burned time.
			for _, b := range c.Backends {
				req := latch.RunRequest{Backend: b, Workload: c.Workloads[0], Shards: s}
				if err := req.Validate(); err != nil {
					return err
				}
			}
		}
		for _, f := range c.SampleFractions {
			if !(f >= 0 && f <= 1) {
				return fmt.Errorf("sample fraction %v outside [0, 1]", f)
			}
		}
	case KindGeometry:
		if _, ok := geometryAxes[c.Axis]; !ok {
			return fmt.Errorf("unknown geometry axis %q (known: ctc_entries, domain_size, timeout, queue_depth)", c.Axis)
		}
		if len(c.Values) == 0 || len(c.Workloads) == 0 {
			return fmt.Errorf("geometry cells need values and workloads")
		}
		for _, v := range c.Values {
			if v < 1 {
				return fmt.Errorf("axis values must be positive, got %d", v)
			}
		}
	case KindExperiment:
		if len(c.Experiments) == 0 {
			return fmt.Errorf("experiment cells need experiment ids")
		}
		for _, id := range c.Experiments {
			if _, err := experiments.Lookup(id); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown cell kind %q (known: backend, geometry, experiment)", c.Kind)
	}
	if err := validateWorkloads(c.Workloads); err != nil {
		return err
	}
	return nil
}

func validateWorkloads(names []string) error {
	known := map[string]bool{}
	for _, w := range latch.Workloads() {
		known[w] = true
	}
	for _, w := range names {
		if !known[w] {
			return fmt.Errorf("unknown workload %q (known: %v)", w, latch.Workloads())
		}
	}
	return nil
}

// events resolves the effective stream length of a cell.
func (g Grid) events(c Cell) uint64 {
	if c.Events > 0 {
		return c.Events
	}
	if g.Events > 0 {
		return g.Events
	}
	return latch.DefaultRunEvents
}

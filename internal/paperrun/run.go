package paperrun

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"latch"
	"latch/internal/experiments"
	"latch/internal/hlatch"
	"latch/internal/platch"
	"latch/internal/slatch"
	"latch/internal/workload"
)

// Sample is one deterministic measurement: the value of one metric of one
// workload, in one variant of one cell, on one repeat. The CSV files under
// csv/ are exactly these records.
type Sample struct {
	Cell     string
	Variant  string
	Repeat   int
	Workload string
	Metric   string
	Value    float64
}

// csvHeader is the schema of every per-cell CSV file.
var csvHeader = []string{"cell", "variant", "repeat", "workload", "metric", "value"}

// Manifest records the run's provenance: everything machine- or
// time-dependent lives here (and in logs/), never in csv/.
type Manifest struct {
	Created    string `json:"created"`
	GridName   string `json:"grid_name"`
	GridSHA256 string `json:"grid_sha256"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitRev     string `json:"git_rev"`
	Repeats    int    `json:"repeats"`
	Cells      int    `json:"cells"`
}

// RunResult summarizes one Execute.
type RunResult struct {
	Dir     string
	Samples int
}

// gitRev best-effort resolves the working tree's HEAD commit; runs happen
// from checkouts, but a missing git is provenance lost, not a failure.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Execute runs every cell of the grid and writes the run tree:
//
//	<dir>/manifest.json   provenance (timestamped, machine-dependent)
//	<dir>/grid.json       verbatim copy of the grid file
//	<dir>/csv/<cell>.csv  deterministic per-cell samples
//	<dir>/logs/run.log    progress log (wall-clock timings live here)
//	<dir>/analysis/       empty until `latch-paper analyze` fills it
//
// raw is the grid file's bytes (already validated by LoadGrid); logw, when
// non-nil, additionally receives the progress log.
func Execute(ctx context.Context, g Grid, raw []byte, dir string, logw io.Writer) (RunResult, error) {
	_, hash, err := LoadGrid(raw)
	if err != nil {
		return RunResult{}, err
	}
	for _, sub := range []string{"csv", "logs", "analysis"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return RunResult{}, err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "grid.json"), raw, 0o644); err != nil {
		return RunResult{}, err
	}
	man := Manifest{
		Created:    time.Now().UTC().Format(time.RFC3339),
		GridName:   g.Name,
		GridSHA256: hash,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitRev:     gitRev(),
		Repeats:    g.Repeats,
		Cells:      len(g.Cells),
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), man); err != nil {
		return RunResult{}, err
	}

	logFile, err := os.Create(filepath.Join(dir, "logs", "run.log"))
	if err != nil {
		return RunResult{}, err
	}
	defer logFile.Close()
	sink := io.Writer(logFile)
	if logw != nil {
		sink = io.MultiWriter(logFile, logw)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(sink, format+"\n", args...)
	}

	logf("grid %s (%d cells, %d repeats) -> %s", g.Name, len(g.Cells), g.Repeats, dir)
	total := 0
	for _, c := range g.Cells {
		start := time.Now()
		samples, err := runCell(ctx, g, c)
		if err != nil {
			return RunResult{}, fmt.Errorf("cell %s: %w", c.ID, err)
		}
		if err := writeCellCSV(filepath.Join(dir, "csv", c.ID+".csv"), samples); err != nil {
			return RunResult{}, err
		}
		total += len(samples)
		logf("cell %-24s %6d samples in %v", c.ID, len(samples), time.Since(start).Round(time.Millisecond))
	}
	logf("done: %d samples", total)
	return RunResult{Dir: dir, Samples: total}, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCellCSV writes one cell's samples. The writer is fully
// deterministic: samples arrive in nested-loop order (variant, workload,
// repeat, metric) and floats render via the shortest round-trip form.
func writeCellCSV(path string, samples []Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(csvHeader); err != nil {
		f.Close()
		return err
	}
	for _, s := range samples {
		rec := []string{s.Cell, s.Variant, strconv.Itoa(s.Repeat), s.Workload,
			s.Metric, strconv.FormatFloat(s.Value, 'g', -1, 64)}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runCell(ctx context.Context, g Grid, c Cell) ([]Sample, error) {
	switch c.Kind {
	case KindBackend:
		return runBackendCell(ctx, g, c)
	case KindGeometry:
		return runGeometryCell(ctx, g, c)
	case KindExperiment:
		return runExperimentCell(g, c)
	default:
		return nil, fmt.Errorf("unknown cell kind %q", c.Kind)
	}
}

// repeatSeed derives the RNG seed of one (cell, variant, workload, repeat)
// run from the grid's base seed. Identity-derived seeds are what make the
// whole tree reproducible: the same grid file always replays the same
// streams, and every repeat is a genuinely distinct stream.
func repeatSeed(g Grid, cell, variant, wl string, rep int) int64 {
	s := workload.DeriveSeed(g.BaseSeed, "paperrun", cell, variant, wl, strconv.Itoa(rep))
	if s == 0 {
		// Seed 0 means "keep the calibrated seed" to the facade; nudge the
		// astronomically unlikely collision off the sentinel.
		s = 1
	}
	return s
}

func formatFraction(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// runBackendCell expands backends x shards x sampling fractions x
// workloads x repeats through the latch.Run facade.
func runBackendCell(ctx context.Context, g Grid, c Cell) ([]Sample, error) {
	shards := c.Shards
	if len(shards) == 0 {
		shards = []int{0} // backend default geometry
	}
	fracs := c.SampleFractions
	sweepFracs := len(fracs) > 0
	if !sweepFracs {
		fracs = []float64{1}
	}
	var out []Sample
	for _, backend := range c.Backends {
		for _, shard := range shards {
			for _, frac := range fracs {
				variant := backend
				if shard > 0 {
					variant += "/shards=" + strconv.Itoa(shard)
				}
				if sweepFracs {
					variant += "/sample=" + formatFraction(frac)
				}
				for _, wl := range c.Workloads {
					for rep := 0; rep < g.Repeats; rep++ {
						seed := repeatSeed(g, c.ID, variant, wl, rep)
						req := latch.RunRequest{
							Backend:  backend,
							Workload: wl,
							Events:   g.events(c),
							Shards:   shard,
							Seed:     seed,
						}
						if sweepFracs {
							pol := latch.DefaultPolicy()
							pol.Sampling.SampleFraction = frac
							pol.Sampling.SampleSeed = uint64(seed)
							req.Policy = &pol
						}
						res, err := latch.Run(ctx, req)
						if err != nil {
							return nil, fmt.Errorf("variant %s workload %s repeat %d: %w", variant, wl, rep, err)
						}
						out = append(out, resultSamples(c.ID, variant, rep, res)...)
					}
				}
			}
		}
	}
	return out, nil
}

// resultSamples flattens one backend result into samples via the
// structured export (the same records the experiments tables build on).
func resultSamples(cell, variant string, rep int, res latch.BackendResult) []Sample {
	wm := experiments.ResultMetrics(res)
	out := make([]Sample, 0, len(wm.Metrics)+2)
	out = append(out,
		Sample{cell, variant, rep, wm.Workload, "events", float64(wm.Events)},
		Sample{cell, variant, rep, wm.Workload, "checks", float64(wm.Checks)})
	for _, m := range wm.Metrics {
		out = append(out, Sample{cell, variant, rep, wm.Workload, m.Name, m.Value})
	}
	return out
}

// runGeometryCell sweeps one scheme-specific configuration axis through
// the scheme's own Run — the same pattern the ablation experiments use,
// but repeat-seeded and exported as samples.
func runGeometryCell(ctx context.Context, g Grid, c Cell) ([]Sample, error) {
	scheme := geometryAxes[c.Axis]
	var out []Sample
	for _, v := range c.Values {
		variant := fmt.Sprintf("%s/%s=%d", scheme, c.Axis, v)
		for _, wl := range c.Workloads {
			for rep := 0; rep < g.Repeats; rep++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				p, err := workload.Get(wl)
				if err != nil {
					return nil, err
				}
				p.Seed = repeatSeed(g, c.ID, variant, wl, rep)
				res, err := runGeometry(scheme, c.Axis, v, p, g.events(c))
				if err != nil {
					return nil, fmt.Errorf("variant %s workload %s repeat %d: %w", variant, wl, rep, err)
				}
				out = append(out, resultSamples(c.ID, variant, rep, res)...)
				if pr, ok := res.(platch.Result); ok {
					// The queue-sim overheads are what a queue-depth sweep
					// actually varies, but they sit outside the backend's
					// headline Columns; export them explicitly.
					out = append(out,
						Sample{c.ID, variant, rep, pr.Benchmark, "queue overhead simple", pr.QueueOverheadSimple},
						Sample{c.ID, variant, rep, pr.Benchmark, "queue overhead optimized", pr.QueueOverheadOptimized})
				}
			}
		}
	}
	return out, nil
}

func runGeometry(scheme, axis string, v int, p workload.Profile, events uint64) (latch.BackendResult, error) {
	switch scheme {
	case "hlatch":
		cfg := hlatch.DefaultConfig()
		cfg.Events = events
		switch axis {
		case "ctc_entries":
			cfg.Latch.CTCEntries = v
		case "domain_size":
			cfg.Latch.DomainSize = uint32(v)
		}
		return hlatch.Run(p, cfg)
	case "slatch":
		cfg := slatch.DefaultConfig()
		cfg.Events = events
		cfg.Costs.TimeoutInstrs = uint64(v)
		return slatch.Run(p, cfg)
	case "platch":
		cfg := platch.DefaultConfig()
		cfg.Events = events
		cfg.QueueDepth = v
		return platch.Run(p, cfg)
	}
	return nil, fmt.Errorf("unknown geometry scheme %q", scheme)
}

// runExperimentCell regenerates catalog experiments once per repeat, each
// repeat under its own seed salt (a fresh Runner, so memoized passes never
// leak across repeats), and flattens the rendered tables into samples. The
// table row label lands in the workload column and the column header in
// the metric column.
func runExperimentCell(g Grid, c Cell) ([]Sample, error) {
	var out []Sample
	for _, id := range c.Experiments {
		exp, err := experiments.Lookup(id)
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < g.Repeats; rep++ {
			opts := experiments.DefaultOptions()
			if ev := g.events(c); ev != opts.Events {
				// Keep the default 1:4:2 length ratio between the cache,
				// temporal, and granularity passes when the grid scales
				// the stream length.
				opts.Events = ev
				opts.EpochEvents = 4 * ev
				opts.Fig6Events = 2 * ev
			}
			opts.Workers = c.Workers
			opts.SeedSalt = fmt.Sprintf("paperrun/%s/%s/r%d", c.ID, id, rep)
			runner := experiments.NewRunner(opts)
			table, err := exp.Run(runner)
			if err != nil {
				return nil, fmt.Errorf("experiment %s repeat %d: %w", id, rep, err)
			}
			for _, cellv := range experiments.TableMetrics(table) {
				out = append(out, Sample{c.ID, id, rep, cellv.Row, cellv.Column, cellv.Value})
			}
		}
	}
	return out, nil
}

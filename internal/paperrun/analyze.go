package paperrun

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"latch/internal/stats"
)

// group is one (variant, workload, metric) series: its value across every
// repeat of the run.
type group struct {
	Variant  string        `json:"variant"`
	Workload string        `json:"workload"`
	Metric   string        `json:"metric"`
	Values   []float64     `json:"-"`
	Summary  stats.Summary `json:"summary"`
}

// CellAnalysis is the per-cell aggregation: every series of the cell with
// its dispersion statistics across repeats.
type CellAnalysis struct {
	Cell   string  `json:"cell"`
	Groups []group `json:"series"`
}

// Analysis is the full result of analyzing one run directory.
type Analysis struct {
	Manifest Manifest       `json:"manifest"`
	Grid     Grid           `json:"-"`
	Cells    []CellAnalysis `json:"cells"`
}

// LoadRun reads a run directory produced by Execute — any past run, not
// just this process's — and aggregates its CSV samples.
func LoadRun(dir string) (*Analysis, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "grid.json"))
	if err != nil {
		return nil, fmt.Errorf("paperrun: %s does not look like a run directory: %w", dir, err)
	}
	g, _, err := LoadGrid(raw)
	if err != nil {
		return nil, err
	}
	var man Manifest
	manRaw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(manRaw, &man); err != nil {
		return nil, fmt.Errorf("paperrun: parse manifest: %w", err)
	}
	a := &Analysis{Manifest: man, Grid: g}
	for _, c := range g.Cells {
		samples, err := readCellCSV(filepath.Join(dir, "csv", c.ID+".csv"))
		if err != nil {
			return nil, fmt.Errorf("paperrun: cell %s: %w", c.ID, err)
		}
		ca, err := aggregate(c.ID, samples)
		if err != nil {
			return nil, fmt.Errorf("paperrun: cell %s: %w", c.ID, err)
		}
		a.Cells = append(a.Cells, ca)
	}
	return a, nil
}

func readCellCSV(path string) ([]Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	if strings.Join(header, ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("unexpected CSV header %v", header)
	}
	var out []Sample
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		rep, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("bad repeat %q: %w", rec[2], err)
		}
		v, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", rec[5], err)
		}
		out = append(out, Sample{rec[0], rec[1], rep, rec[3], rec[4], v})
	}
}

// aggregate folds a cell's samples into per-series summaries, preserving
// first-appearance order so the rendered tables match the run's loop
// order.
func aggregate(cell string, samples []Sample) (CellAnalysis, error) {
	type key struct{ variant, workload, metric string }
	index := map[key]int{}
	ca := CellAnalysis{Cell: cell}
	for _, s := range samples {
		k := key{s.Variant, s.Workload, s.Metric}
		i, ok := index[k]
		if !ok {
			i = len(ca.Groups)
			index[k] = i
			ca.Groups = append(ca.Groups, group{Variant: s.Variant, Workload: s.Workload, Metric: s.Metric})
		}
		ca.Groups[i].Values = append(ca.Groups[i].Values, s.Value)
	}
	for i := range ca.Groups {
		sum, err := stats.Summarize(ca.Groups[i].Values)
		if err != nil {
			return CellAnalysis{}, fmt.Errorf("series %s/%s/%s: %w",
				ca.Groups[i].Variant, ca.Groups[i].Workload, ca.Groups[i].Metric, err)
		}
		ca.Groups[i].Summary = sum
	}
	return ca, nil
}

// Table renders one cell's analysis as a stats.Table (the repo's common
// table currency: String, Markdown, and LaTeX all come for free).
func (ca CellAnalysis) Table() *stats.Table {
	t := stats.NewTable("Cell "+ca.Cell+": per-series dispersion across repeats",
		"variant", "workload", "metric", "n", "mean", "stddev", "95% CI", "min", "max")
	for _, gr := range ca.Groups {
		s := gr.Summary
		ci := "n/a"
		if s.N > 1 {
			ci = stats.FormatFloat(s.CI95)
		}
		t.AddRow(gr.Variant, gr.Workload, gr.Metric, strconv.Itoa(s.N),
			stats.FormatFloat(s.Mean), stats.FormatFloat(s.StdDev), ci,
			stats.FormatFloat(s.Min), stats.FormatFloat(s.Max))
	}
	return t
}

// WriteAnalysis renders the analysis into <dir>/analysis/: Markdown and
// LaTeX summary tables plus the raw aggregation as JSON.
func (a *Analysis) WriteAnalysis(dir string) error {
	outDir := filepath.Join(dir, "analysis")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var md, tex strings.Builder
	fmt.Fprintf(&md, "# %s\n\ngrid %s (sha256 %s), %d repeats, recorded %s\n\n",
		a.Manifest.GridName, a.Manifest.GridName, a.Manifest.GridSHA256, a.Manifest.Repeats, a.Manifest.Created)
	for _, ca := range a.Cells {
		t := ca.Table()
		md.WriteString(t.Markdown())
		md.WriteString("\n")
		tex.WriteString(t.LaTeX())
		tex.WriteString("\n")
	}
	if err := os.WriteFile(filepath.Join(outDir, "summary.md"), []byte(md.String()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "summary.tex"), []byte(tex.String()), 0o644); err != nil {
		return err
	}
	return writeJSON(filepath.Join(outDir, "summary.json"), a)
}

// HistoryEntry is one run's headline in the BENCH history tracker. The
// headlines map is keyed "<cell>/<variant>" and holds the mean of the
// cell's declared headline metric pooled across workloads and repeats;
// cells without a headline contribute nothing.
type HistoryEntry struct {
	Analyzed   string             `json:"analyzed"`
	RunCreated string             `json:"run_created"`
	GridName   string             `json:"grid_name"`
	GridSHA256 string             `json:"grid_sha256"`
	GitRev     string             `json:"git_rev"`
	GoVersion  string             `json:"go_version"`
	RunDir     string             `json:"run_dir"`
	Headlines  map[string]float64 `json:"headlines"`
}

// HistoryEntry extracts the run's headline metrics.
func (a *Analysis) HistoryEntry(runDir string) HistoryEntry {
	headline := map[string]string{}
	for _, c := range a.Grid.Cells {
		if c.Headline != "" {
			headline[c.ID] = c.Headline
		}
	}
	e := HistoryEntry{
		Analyzed:   time.Now().UTC().Format(time.RFC3339),
		RunCreated: a.Manifest.Created,
		GridName:   a.Manifest.GridName,
		GridSHA256: a.Manifest.GridSHA256,
		GitRev:     a.Manifest.GitRev,
		GoVersion:  a.Manifest.GoVersion,
		RunDir:     runDir,
		Headlines:  map[string]float64{},
	}
	for _, ca := range a.Cells {
		metric, ok := headline[ca.Cell]
		if !ok {
			continue
		}
		pooled := map[string][]float64{}
		for _, gr := range ca.Groups {
			if gr.Metric == metric {
				pooled[gr.Variant] = append(pooled[gr.Variant], gr.Values...)
			}
		}
		for variant, vals := range pooled {
			// Pooled series are non-empty by construction.
			e.Headlines[ca.Cell+"/"+variant] = stats.MustMean(vals)
		}
	}
	return e
}

// AppendHistory appends one entry to the JSON history file, creating it
// when absent. The file is a JSON array, newest entry last.
func AppendHistory(path string, e HistoryEntry) error {
	var entries []HistoryEntry
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("paperrun: parse history %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		return err
	}
	entries = append(entries, e)
	return writeJSON(path, entries)
}

// Analyze is the one-call form: load a run directory, write its analysis
// tree, and append its headline entry to the history file (skipped when
// historyPath is empty).
func Analyze(dir, historyPath string) (*Analysis, error) {
	a, err := LoadRun(dir)
	if err != nil {
		return nil, err
	}
	if err := a.WriteAnalysis(dir); err != nil {
		return nil, err
	}
	if historyPath != "" {
		if err := AppendHistory(historyPath, a.HistoryEntry(dir)); err != nil {
			return nil, err
		}
	}
	return a, nil
}

package paperrun

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testGrid is the miniature grid the tests run: every cell kind, short
// streams, two repeats.
const testGrid = `{
  "name": "paperrun-test",
  "repeats": 2,
  "base_seed": 42,
  "events": 20000,
  "cells": [
    {
      "id": "backends",
      "kind": "backend",
      "backends": ["slatch"],
      "workloads": ["gcc"],
      "headline": "overhead"
    },
    {
      "id": "cplatch-shards",
      "kind": "backend",
      "backends": ["cplatch"],
      "workloads": ["gcc"],
      "shards": [1, 2]
    },
    {
      "id": "sampling",
      "kind": "backend",
      "backends": ["slatch"],
      "workloads": ["apache"],
      "sample_fractions": [0.5, 1]
    },
    {
      "id": "ctc-geometry",
      "kind": "geometry",
      "axis": "ctc_entries",
      "values": [4, 16],
      "workloads": ["gcc"],
      "headline": "combined miss %"
    },
    {
      "id": "taint-tables",
      "kind": "experiment",
      "experiments": ["table1"],
      "workers": 2
    }
  ]
}
`

func executeTestGrid(t *testing.T, dir string) RunResult {
	t.Helper()
	raw := []byte(testGrid)
	g, _, err := LoadGrid(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), g, raw, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExecuteByteIdentical is the pipeline's determinism pin: two runs of
// the same grid must produce byte-identical csv/ trees — the wall-clock
// and machine facts are confined to manifest.json and logs/.
func TestExecuteByteIdentical(t *testing.T) {
	base := t.TempDir()
	a := filepath.Join(base, "a")
	b := filepath.Join(base, "b")
	ra := executeTestGrid(t, a)
	rb := executeTestGrid(t, b)
	if ra.Samples == 0 || ra.Samples != rb.Samples {
		t.Fatalf("sample counts differ or empty: %d vs %d", ra.Samples, rb.Samples)
	}
	g, _, _ := LoadGrid([]byte(testGrid))
	for _, c := range g.Cells {
		rel := filepath.Join("csv", c.ID+".csv")
		da, err := os.ReadFile(filepath.Join(a, rel))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, rel))
		if err != nil {
			t.Fatal(err)
		}
		if len(da) == 0 {
			t.Errorf("%s is empty", rel)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between identical runs", rel)
		}
	}
}

// TestRepeatsDiversify checks the other half of the contract: within one
// run, distinct repeats of the same variant sample genuinely different
// streams, so the dispersion statistics measure something real.
func TestRepeatsDiversify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	executeTestGrid(t, dir)
	samples, err := readCellCSV(filepath.Join(dir, "csv", "backends.csv"))
	if err != nil {
		t.Fatal(err)
	}
	byRep := map[int]map[string]float64{}
	for _, s := range samples {
		if byRep[s.Repeat] == nil {
			byRep[s.Repeat] = map[string]float64{}
		}
		byRep[s.Repeat][s.Variant+"/"+s.Workload+"/"+s.Metric] = s.Value
	}
	if len(byRep) != 2 {
		t.Fatalf("expected 2 repeats, got %d", len(byRep))
	}
	same := true
	for k, v := range byRep[0] {
		if byRep[1][k] != v {
			same = false
		}
	}
	if same {
		t.Fatal("repeat 0 and repeat 1 produced identical metrics — repeats are not reseeded")
	}
}

// TestAnalyzeRoundTrip runs the analyzer over a finished tree and checks
// the rendered artifacts and the history tracker.
func TestAnalyzeRoundTrip(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "run")
	executeTestGrid(t, dir)
	history := filepath.Join(base, "BENCH_history.json")

	a, err := Analyze(dir, history)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 5 {
		t.Fatalf("analyzed %d cells, want 5", len(a.Cells))
	}
	for _, ca := range a.Cells {
		if len(ca.Groups) == 0 {
			t.Errorf("cell %s has no series", ca.Cell)
		}
		for _, gr := range ca.Groups {
			if gr.Summary.N != 2 {
				t.Errorf("cell %s series %s/%s/%s has n=%d, want 2 repeats",
					ca.Cell, gr.Variant, gr.Workload, gr.Metric, gr.Summary.N)
			}
		}
	}

	md, err := os.ReadFile(filepath.Join(dir, "analysis", "summary.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| variant |", "95% CI", "Cell backends"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("summary.md missing %q", want)
		}
	}
	tex, err := os.ReadFile(filepath.Join(dir, "analysis", "summary.tex"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`\begin{tabular}`, `\toprule`, `combined miss \%`} {
		if !strings.Contains(string(tex), want) {
			t.Errorf("summary.tex missing %q", want)
		}
	}

	// The analyzer must be standalone: a second analysis of the same tree
	// from nothing but the files on disk agrees with the first.
	b, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.Cells)
	bj, _ := json.Marshal(b.Cells)
	if !bytes.Equal(aj, bj) {
		t.Fatal("re-analysis of the same tree disagrees with the original")
	}

	// History: one entry per Analyze call, appended in order.
	var entries []HistoryEntry
	raw, err := os.ReadFile(history)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("history has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.GridName != "paperrun-test" || e.GridSHA256 == "" || len(e.Headlines) == 0 {
		t.Fatalf("implausible history entry: %+v", e)
	}
	if _, ok := e.Headlines["backends/slatch"]; !ok {
		t.Errorf("missing backends/slatch headline, have %v", e.Headlines)
	}
	if _, ok := e.Headlines["ctc-geometry/hlatch/ctc_entries=4"]; !ok {
		t.Errorf("missing geometry headline, have %v", e.Headlines)
	}
	if _, err := Analyze(dir, history); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(history)
	entries = nil
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("history has %d entries after second analyze, want 2", len(entries))
	}
}

// TestLoadGridValidation rejects the failure modes a grid author actually
// hits, before any cell runs.
func TestLoadGridValidation(t *testing.T) {
	cases := []struct {
		name string
		grid string
		want string
	}{
		{"bad json", `{`, "parse grid"},
		{"no name", `{"repeats":1,"cells":[{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"]}]}`, "needs a name"},
		{"zero repeats", `{"name":"g","repeats":0,"cells":[{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"]}]}`, "repeats"},
		{"no cells", `{"name":"g","repeats":1,"cells":[]}`, "no cells"},
		{"dup id", `{"name":"g","repeats":1,"cells":[
			{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"]},
			{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"]}]}`, "duplicate"},
		{"bad kind", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"nope"}]}`, "unknown cell kind"},
		{"bad backend", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"backend","backends":["nope"],"workloads":["gcc"]}]}`, "unknown backend"},
		{"bad workload", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"backend","backends":["slatch"],"workloads":["nope"]}]}`, "unknown workload"},
		{"bad fraction", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"],"sample_fractions":[1.5]}]}`, "outside [0, 1]"},
		{"shards on unsharded backend", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"backend","backends":["slatch"],"workloads":["gcc"],"shards":[2]}]}`, "does not support shard"},
		{"bad axis", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"geometry","axis":"nope","values":[1],"workloads":["gcc"]}]}`, "unknown geometry axis"},
		{"bad experiment", `{"name":"g","repeats":1,"cells":[{"id":"x","kind":"experiment","experiments":["nope"]}]}`, "unknown id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadGrid([]byte(tc.grid))
			if err == nil {
				t.Fatal("grid accepted, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	g, hash, err := LoadGrid([]byte(testGrid))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "paperrun-test" || len(hash) != 64 {
		t.Fatalf("good grid mis-loaded: %q / %q", g.Name, hash)
	}
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: NOP},
		{Op: MOV, Rd: 1, Rs1: 2},
		{Op: MOVI, Rd: 3, Imm: -5},
		{Op: LUI, Rd: 4, Imm: 0x1234},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: XOR, Rd: 15, Rs1: 15, Rs2: 15},
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: 32767},
		{Op: LDW, Rd: 7, Rs1: 8, Imm: -32768},
		{Op: STB, Rd: 9, Rs1: 10, Imm: 100},
		{Op: BEQ, Rd: 1, Rs1: 2, Imm: -12},
		{Op: JMP, Imm: 1000},
		{Op: JR, Rs1: 14},
		{Op: CALL, Imm: -7},
		{Op: CALLR, Rs1: 3},
		{Op: SYS, Imm: 5},
		{Op: HALT},
		{Op: STRF, Rd: 2},
		{Op: STNT, Rd: 3, Rs1: 4},
		{Op: LTNT, Rd: 5},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Instr{Op: opCount}); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Encode(Instr{Op: ADD, Rd: 16}); err == nil {
		t.Error("register 16 accepted")
	}
	if _, err := Encode(Instr{Op: MOVI, Imm: 40000}); err == nil {
		t.Error("oversized immediate accepted")
	}
	if _, err := Encode(Instr{Op: MOVI, Imm: -40000}); err == nil {
		t.Error("undersized immediate accepted")
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xFF000000); err == nil {
		t.Error("invalid opcode word accepted")
	}
}

func TestDecodeEncodeProperty(t *testing.T) {
	// Any valid instruction survives encode→decode unchanged.
	f := func(op uint8, rd, rs1, rs2 uint8, imm int16) bool {
		in := Instr{
			Op:  Op(op % uint8(opCount)),
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Imm: int32(imm),
		}
		if useRs2(in.Op) {
			in.Rs2 = rs2 % NumRegs
			in.Imm = 0
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpClasses(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop, MOV: ClassMove, MOVI: ClassImm, LUI: ClassImm,
		ADD: ClassALU2, ADDI: ClassALUImm, ORI: ClassALUImm,
		LDB: ClassLoad, STW: ClassStore, BEQ: ClassBranch,
		JMP: ClassJump, JR: ClassJumpInd, CALL: ClassJump, CALLR: ClassJumpInd,
		SYS: ClassSys, HALT: ClassHalt, STRF: ClassLatch, STNT: ClassLatch, LTNT: ClassLatch,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("%s.Class() = %v, want %v", op, got, want)
		}
	}
}

func TestMemSize(t *testing.T) {
	cases := map[Op]int{LDB: 1, LDH: 2, LDW: 4, STB: 1, STH: 2, STW: 4, ADD: 0, JMP: 0}
	for op, want := range cases {
		if got := op.MemSize(); got != want {
			t.Errorf("%s.MemSize() = %d, want %d", op, got, want)
		}
	}
}

func TestOpString(t *testing.T) {
	if ADD.String() != "add" || STNT.String() != "stnt" {
		t.Error("bad mnemonic")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op should show number")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: LDW, Rd: 1, Rs1: 2, Imm: 8}, "ldw r1, [r2+8]"},
		{Instr{Op: STB, Rd: 4, Rs1: 5, Imm: -4}, "stb r4, [r5-4]"},
		{Instr{Op: JR, Rs1: 14}, "jr r14"},
		{Instr{Op: SYS, Imm: 2}, "sys 2"},
		{Instr{Op: HALT}, "halt"},
		{Instr{Op: STNT, Rs1: 1, Rd: 2}, "stnt r1, r2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestReadsWritesMem(t *testing.T) {
	if !(Instr{Op: LDW}).ReadsMem() || (Instr{Op: LDW}).WritesMem() {
		t.Error("LDW mem flags wrong")
	}
	if (Instr{Op: STW}).ReadsMem() || !(Instr{Op: STW}).WritesMem() {
		t.Error("STW mem flags wrong")
	}
	if (Instr{Op: ADD}).ReadsMem() || (Instr{Op: ADD}).WritesMem() {
		t.Error("ADD mem flags wrong")
	}
}

package isa

import (
	"strings"
	"testing"
)

func TestDisassembleBasic(t *testing.T) {
	p := MustAssemble(`
_start:
	movi r1, 3
loop:
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`)
	out := Disassemble(p)
	for _, want := range []string{
		"_start:", "loop:",
		"movi r1, 3",
		"addi r1, r1, -1",
		"bne r1, r0, -2  ; -> loop",
		"halt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleDataAndTail(t *testing.T) {
	p := MustAssemble(`
	jmp over
data:
	.word 0xFF000001   ; invalid opcode 0xFF: rendered as data
over:
	halt
	.byte 1, 2, 3      ; 3-byte tail
`)
	out := Disassemble(p)
	if !strings.Contains(out, ".word 0xff000001") {
		t.Errorf("data word not rendered:\n%s", out)
	}
	if !strings.Contains(out, "010203  .byte") {
		t.Errorf("tail bytes not rendered:\n%s", out)
	}
	if !strings.Contains(out, "jmp 1  ; -> over") {
		t.Errorf("jump target not annotated:\n%s", out)
	}
}

func TestDisassembleJumpToUnlabeled(t *testing.T) {
	p := MustAssemble("jmp 3\nnop\nnop\nnop\nnop")
	out := Disassemble(p)
	if !strings.Contains(out, "; -> 0x10") {
		t.Errorf("numeric target missing:\n%s", out)
	}
}

func TestDisassembleRoundTripPrograms(t *testing.T) {
	// Disassembly of every built-in program must render without panics and
	// contain one line per instruction word.
	for _, src := range []string{
		"movi r1, 1\nhalt",
		"x: call x",
	} {
		p := MustAssemble(src)
		out := Disassemble(p)
		lines := strings.Count(out, "\n")
		if lines < len(p.Image)/4 {
			t.Errorf("too few lines for %q:\n%s", src, out)
		}
	}
}

package isa

// DecodeCache is a direct-mapped cache of decoded instructions keyed by PC —
// the simulation analog of a DBT system's code cache (the role Pin's code
// cache plays under the paper's software DIFT layer). A hit returns the
// decoded Instr without re-fetching or re-decoding the instruction word; the
// owner is responsible for invalidating entries when memory holding cached
// code is written.
//
// Beyond single decodes, the cache builds superinstructions: when two
// adjacent PCs hold a fusible pair (see Fusible), the first PC's entry gains
// a copy of its successor and a FuseKind, letting the interpreter's fast
// loop execute both in one dispatch. The fused copy is valid as long as the
// underlying instruction words are — InvalidateRange treats a fused entry as
// covering both words, so a store over either half drops it.
//
// The zero value is not usable; call NewDecodeCache.
type DecodeCache struct {
	entries []DecodeEntry
	mask    uint32
	hits    uint64
	misses  uint64
	fusions uint64
}

// DecodeEntry is one direct-mapped slot: the decode, its PC tag, and — for
// superinstructions — a copy of the fused successor. Packing the slot into
// one struct keeps a lookup to a single bounds check and (at 24 bytes) a
// single cache line.
type DecodeEntry struct {
	In    Instr
	Next  Instr // fused successor decode; valid when Fuse != FuseNone
	pc    uint32
	Fuse  FuseKind
	valid bool
	// Aux is a caller-owned classification byte, reset to zero on Insert.
	// The interpreter stores its fast-loop kind here so dispatch reads one
	// precomputed byte from the already-resident slot.
	Aux uint8
}

// FuseKind classifies a fused superinstruction: a pair of adjacent decoded
// instructions the interpreter may execute in one dispatch. Fusion never
// changes semantics — the pair still executes sequentially — it only
// eliminates the second fetch/dispatch.
type FuseKind uint8

// Fusion kinds. The idioms are the common LA32 pairs the workload programs
// emit: immediate-feeds-ALU sequences (movi+add), compare+branch, and the
// load+compare half of load+compare+branch loops.
const (
	FuseNone FuseKind = iota
	// FuseALUALU: two register-only instructions (moves, immediates, ALU
	// ops) — the movi+add idiom and friends.
	FuseALUALU
	// FuseALUBranch: a register-only instruction followed by a conditional
	// branch — the compare+branch idiom.
	FuseALUBranch
	// FuseLoadALU: a load followed by a register-only instruction — the
	// load+compare prefix of load+compare+branch loops.
	FuseLoadALU
)

// regOnly reports whether op reads and writes only registers: no memory
// operand, no control transfer, no syscall, no taint-state side channel.
func regOnly(op Op) bool {
	switch op.Class() {
	case ClassNop, ClassMove, ClassImm, ClassALU2, ClassALUImm:
		return true
	}
	return false
}

// Fusible classifies the superinstruction kind of an adjacent (first,
// second) instruction pair, or FuseNone when the pair is not fused. Only the
// first slot may reference memory (as a load), and the second slot never
// transfers control except as a conditional branch — so a fused pair needs
// no mid-pair eligibility re-check: the first instruction cannot redirect
// the PC away from the second.
func Fusible(first, second Instr) FuseKind {
	switch {
	case regOnly(first.Op) && regOnly(second.Op):
		return FuseALUALU
	case regOnly(first.Op) && second.Op.Class() == ClassBranch:
		return FuseALUBranch
	case first.Op.Class() == ClassLoad && regOnly(second.Op):
		return FuseLoadALU
	}
	return FuseNone
}

// DefaultDecodeCacheEntries is the default capacity: 4096 entries cover a
// 16 KiB code footprint with zero conflict misses.
const DefaultDecodeCacheEntries = 4096

// NewDecodeCache returns a cache with at least the given number of entries
// (rounded up to a power of two; minimum 16).
func NewDecodeCache(entries int) *DecodeCache {
	n := 16
	for n < entries {
		n *= 2
	}
	return &DecodeCache{
		entries: make([]DecodeEntry, n),
		mask:    uint32(n - 1),
	}
}

// index returns the direct-mapped slot of pc. Instructions are word-sized,
// so the low two PC bits are dropped before indexing.
func (c *DecodeCache) index(pc uint32) uint32 { return (pc >> 2) & c.mask }

// Lookup returns the cached decode of the instruction at pc.
func (c *DecodeCache) Lookup(pc uint32) (Instr, bool) {
	e := &c.entries[c.index(pc)]
	if e.valid && e.pc == pc {
		c.hits++
		return e.In, true
	}
	c.misses++
	return Instr{}, false
}

// LookupFused returns the slot holding the cached decode at pc plus, for
// fused entries, a copy of the successor instruction at pc+WordSize and the
// fusion kind. The pointer is into the cache's slot array and is invalidated
// by the next Insert/TryFuse/InvalidateRange; callers must not retain it.
func (c *DecodeCache) LookupFused(pc uint32) (e *DecodeEntry, ok bool) {
	e = &c.entries[c.index(pc)]
	if e.valid && e.pc == pc {
		c.hits++
		return e, true
	}
	c.misses++
	return nil, false
}

// PeekFused is LookupFused without statistics accounting, for dispatch loops
// that batch their own hit/miss counts through AddStats.
func (c *DecodeCache) PeekFused(pc uint32) (e *DecodeEntry, ok bool) {
	e = &c.entries[c.index(pc)]
	if e.valid && e.pc == pc {
		return e, true
	}
	return nil, false
}

// DecodeProbe is a dispatch-loop snapshot of the cache's slot array: holding
// the slice and mask in the caller's frame lets a tight loop keep them in
// registers, where probing through the *DecodeCache would reload them on
// every iteration (stores through other pointers may alias the cache). The
// snapshot observes Insert/TryFuse/Invalidate mutations (the array is shared
// and never reallocated); statistics must be batched via AddStats.
type DecodeProbe struct {
	entries []DecodeEntry
	mask    uint32
}

// Probe returns a snapshot probe over the cache's slots.
func (c *DecodeCache) Probe() DecodeProbe {
	return DecodeProbe{entries: c.entries, mask: c.mask}
}

// At returns the slot holding a valid decode of pc, or ok=false.
func (p DecodeProbe) At(pc uint32) (e *DecodeEntry, ok bool) {
	e = &p.entries[(pc>>2)&p.mask]
	if e.valid && e.pc == pc {
		return e, true
	}
	return nil, false
}

// AddStats credits hit and miss counts accumulated externally by PeekFused
// callers.
func (c *DecodeCache) AddStats(hits, misses uint64) {
	c.hits += hits
	c.misses += misses
}

// Insert caches the decode of the instruction at pc, displacing whatever
// occupied its slot (including any superinstruction built on it). It returns
// the slot so the owner can stamp its Aux classification.
func (c *DecodeCache) Insert(pc uint32, in Instr) *DecodeEntry {
	e := &c.entries[c.index(pc)]
	e.In = in
	e.pc = pc
	e.valid = true
	e.Fuse = FuseNone
	e.Aux = 0
	return e
}

// TryFuse attempts to build a superinstruction at pc: when the cache holds
// valid decodes of both pc and pc+WordSize and the pair matches a fusible
// idiom, the entry at pc gains a copy of its successor. The copy stays
// correct across conflict displacement of the successor's slot — it mirrors
// the instruction *word* at pc+WordSize, which only stores change, and
// InvalidateRange drops fused entries for writes over either word.
func (c *DecodeCache) TryFuse(pc uint32) FuseKind {
	e := &c.entries[c.index(pc)]
	if !e.valid || e.pc != pc || e.Fuse != FuseNone {
		if e.valid && e.pc == pc {
			return e.Fuse
		}
		return FuseNone
	}
	succ := pc + WordSize
	s := &c.entries[c.index(succ)]
	if !s.valid || s.pc != succ {
		return FuseNone
	}
	k := Fusible(e.In, s.In)
	if k != FuseNone {
		e.Fuse = k
		e.Next = s.In
		c.fusions++
	}
	return k
}

// InvalidateRange drops every cached instruction overlapping the byte range
// [lo, hi]. An entry for pc covers bytes [pc, pc+WordSize) — or twice that
// when it carries a fused successor — so any write into that window
// invalidates it. Bounds are inclusive to allow hi = 0xFFFFFFFF.
func (c *DecodeCache) InvalidateRange(lo, hi uint32) {
	if hi < lo {
		return
	}
	// An instruction starting up to 2*WordSize-1 bytes before lo can still
	// overlap the range (a fused entry spans two words). Unaligned PCs are
	// permitted, so every byte position is a candidate start.
	const maxSpan = 2 * WordSize
	start := uint64(lo) - (maxSpan - 1)
	if lo < maxSpan-1 {
		start = 0
	}
	if uint64(hi)-start+1 >= uint64(len(c.entries)) {
		// More candidate PCs than slots: cheaper to drop everything.
		c.Flush()
		return
	}
	for p := start; p <= uint64(hi); p++ {
		pc := uint32(p)
		e := &c.entries[c.index(pc)]
		if !e.valid || e.pc != pc {
			continue
		}
		span := uint32(WordSize)
		if e.Fuse != FuseNone {
			span = maxSpan
		}
		// Overlap test: pc <= hi holds by loop bounds; the entry overlaps
		// when its span reaches lo.
		if pc >= lo || lo-pc < span {
			e.valid = false
		}
	}
}

// Flush empties the cache, keeping statistics.
func (c *DecodeCache) Flush() {
	for i := range c.entries {
		c.entries[i].valid = false
	}
}

// Stats returns the hit and miss counts since creation (or ResetStats).
func (c *DecodeCache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Fusions returns the number of superinstructions built since creation.
func (c *DecodeCache) Fusions() uint64 { return c.fusions }

// ResetStats zeroes the counters without touching contents.
func (c *DecodeCache) ResetStats() { c.hits, c.misses = 0, 0 }

// Entries returns the cache capacity.
func (c *DecodeCache) Entries() int { return len(c.entries) }

package isa

// DecodeCache is a direct-mapped cache of decoded instructions keyed by PC —
// the simulation analog of a DBT system's code cache (the role Pin's code
// cache plays under the paper's software DIFT layer). A hit returns the
// decoded Instr without re-fetching or re-decoding the instruction word; the
// owner is responsible for invalidating entries when memory holding cached
// code is written.
//
// The zero value is not usable; call NewDecodeCache.
type DecodeCache struct {
	instrs []Instr
	pcs    []uint32
	valid  []bool
	mask   uint32
	hits   uint64
	misses uint64
}

// DefaultDecodeCacheEntries is the default capacity: 4096 entries cover a
// 16 KiB code footprint with zero conflict misses.
const DefaultDecodeCacheEntries = 4096

// NewDecodeCache returns a cache with at least the given number of entries
// (rounded up to a power of two; minimum 16).
func NewDecodeCache(entries int) *DecodeCache {
	n := 16
	for n < entries {
		n *= 2
	}
	return &DecodeCache{
		instrs: make([]Instr, n),
		pcs:    make([]uint32, n),
		valid:  make([]bool, n),
		mask:   uint32(n - 1),
	}
}

// index returns the direct-mapped slot of pc. Instructions are word-sized,
// so the low two PC bits are dropped before indexing.
func (c *DecodeCache) index(pc uint32) uint32 { return (pc >> 2) & c.mask }

// Lookup returns the cached decode of the instruction at pc.
func (c *DecodeCache) Lookup(pc uint32) (Instr, bool) {
	i := c.index(pc)
	if c.valid[i] && c.pcs[i] == pc {
		c.hits++
		return c.instrs[i], true
	}
	c.misses++
	return Instr{}, false
}

// Insert caches the decode of the instruction at pc, displacing whatever
// occupied its slot.
func (c *DecodeCache) Insert(pc uint32, in Instr) {
	i := c.index(pc)
	c.instrs[i] = in
	c.pcs[i] = pc
	c.valid[i] = true
}

// InvalidateRange drops every cached instruction overlapping the byte range
// [lo, hi]. An entry for pc covers bytes [pc, pc+WordSize), so any write into
// that window invalidates it. Bounds are inclusive to allow hi = 0xFFFFFFFF.
func (c *DecodeCache) InvalidateRange(lo, hi uint32) {
	if hi < lo {
		return
	}
	// An instruction starting up to WordSize-1 bytes before lo still
	// overlaps the range. Unaligned PCs are permitted, so every byte
	// position is a candidate start.
	start := uint64(lo) - (WordSize - 1)
	if lo < WordSize-1 {
		start = 0
	}
	if uint64(hi)-start+1 >= uint64(len(c.pcs)) {
		// More candidate PCs than slots: cheaper to drop everything.
		c.Flush()
		return
	}
	for p := start; p <= uint64(hi); p++ {
		pc := uint32(p)
		i := c.index(pc)
		if c.valid[i] && c.pcs[i] == pc {
			c.valid[i] = false
		}
	}
}

// Flush empties the cache, keeping statistics.
func (c *DecodeCache) Flush() {
	clear(c.valid)
}

// Stats returns the hit and miss counts since creation (or ResetStats).
func (c *DecodeCache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters without touching contents.
func (c *DecodeCache) ResetStats() { c.hits, c.misses = 0, 0 }

// Entries returns the cache capacity.
func (c *DecodeCache) Entries() int { return len(c.instrs) }

// Package isa defines LA32, the small 32-bit load/store instruction set
// executed by the LATCH virtual machine. LA32 stands in for the x86 ISA the
// paper instruments with Intel Pin: it has the properties LATCH cares about
// (register/memory operands extracted at commit, loads/stores of 1/2/4
// bytes, indirect control transfers, and OS entry points that act as taint
// sources), while staying simple enough to interpret deterministically.
//
// The package also defines the three LATCH ISA extensions from Table 5 of
// the paper: STRF (set taint register file), STNT (store taint directly to
// the coarse taint table), and LTNT (load the faulting address of the most
// recent LATCH exception).
package isa

import "fmt"

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Register aliases used by the assembler and calling convention.
const (
	RegZero = 0  // by convention holds 0 at program start; not hardwired
	RegSP   = 13 // stack pointer
	RegLR   = 14 // link register (CALL writes return address here)
	RegTMP  = 15 // assembler scratch register for pseudo-instructions
)

// WordSize is the size in bytes of a machine word and of an instruction.
const WordSize = 4

// Op is an LA32 opcode.
type Op uint8

// Opcodes. The numeric values are part of the binary encoding and must not
// be reordered.
const (
	NOP Op = iota
	// Data movement.
	MOV  // rd = rs1
	MOVI // rd = signext(imm16)
	LUI  // rd = imm16 << 16
	ORI  // rd = rs1 | zeroext(imm16)
	// ALU, register-register.
	ADD // rd = rs1 + rs2
	SUB
	AND
	OR
	XOR
	SHL
	SHR // logical
	SAR // arithmetic
	MUL
	DIVU // unsigned; divide by zero yields all-ones, as on many cores
	SLT  // rd = (rs1 < rs2) signed ? 1 : 0
	SLTU
	// ALU, register-immediate.
	ADDI // rd = rs1 + signext(imm16)
	ANDI
	XORI
	// Loads: rd = mem[rs1 + signext(imm16)].
	LDB // zero-extends
	LDH
	LDW
	// Stores: mem[rs1 + signext(imm16)] = rd (rd is the data register).
	STB
	STH
	STW
	// Control flow. Branch/jump offsets are in instructions, PC-relative to
	// the following instruction.
	BEQ // if rd == rs1: pc += offset
	BNE
	BLT // signed
	BGE
	JMP   // pc += offset
	JR    // pc = rs1 (indirect: DIFT checks the target's taint)
	CALL  // lr = pc+4; pc += offset
	CALLR // lr = pc+4; pc = rs1
	// System.
	SYS  // syscall; number in imm16, args in r1..r4, result in r1
	HALT // stop the machine
	// LATCH extensions (Table 5).
	STRF // set the taint register file from the value in rd
	STNT // update taint of address in rs1 to the tag value in rd, via CTT
	LTNT // rd = address operand that caused the last LATCH exception
	opCount
)

var opNames = [...]string{
	NOP: "nop", MOV: "mov", MOVI: "movi", LUI: "lui", ORI: "ori",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SAR: "sar", MUL: "mul", DIVU: "divu",
	SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", XORI: "xori",
	LDB: "ldb", LDH: "ldh", LDW: "ldw",
	STB: "stb", STH: "sth", STW: "stw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", JR: "jr", CALL: "call", CALLR: "callr",
	SYS: "sys", HALT: "halt",
	STRF: "strf", STNT: "stnt", LTNT: "ltnt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// Class groups opcodes by their operand/taint semantics; the DIFT engine
// dispatches propagation rules on it.
type Class uint8

// Operand classes.
const (
	ClassNop Class = iota
	ClassMove
	ClassImm    // result depends only on an immediate: clears taint
	ClassALU2   // two register sources: taint union
	ClassALUImm // one register source + immediate
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump    // direct jump/call
	ClassJumpInd // indirect jump/call: tainted target is a violation
	ClassSys
	ClassHalt
	ClassLatch // LATCH extension instructions
)

var opClasses = [...]Class{
	NOP: ClassNop, MOV: ClassMove, MOVI: ClassImm, LUI: ClassImm, ORI: ClassALUImm,
	ADD: ClassALU2, SUB: ClassALU2, AND: ClassALU2, OR: ClassALU2, XOR: ClassALU2,
	SHL: ClassALU2, SHR: ClassALU2, SAR: ClassALU2, MUL: ClassALU2, DIVU: ClassALU2,
	SLT: ClassALU2, SLTU: ClassALU2,
	ADDI: ClassALUImm, ANDI: ClassALUImm, XORI: ClassALUImm,
	LDB: ClassLoad, LDH: ClassLoad, LDW: ClassLoad,
	STB: ClassStore, STH: ClassStore, STW: ClassStore,
	BEQ: ClassBranch, BNE: ClassBranch, BLT: ClassBranch, BGE: ClassBranch,
	JMP: ClassJump, JR: ClassJumpInd, CALL: ClassJump, CALLR: ClassJumpInd,
	SYS: ClassSys, HALT: ClassHalt,
	STRF: ClassLatch, STNT: ClassLatch, LTNT: ClassLatch,
}

// Class returns the operand class of o.
func (o Op) Class() Class {
	if int(o) < len(opClasses) {
		return opClasses[o]
	}
	return ClassNop
}

// MemSize returns the access width in bytes for load/store opcodes, 0
// otherwise.
func (o Op) MemSize() int {
	switch o {
	case LDB, STB:
		return 1
	case LDH, STH:
		return 2
	case LDW, STW:
		return 4
	}
	return 0
}

// Instr is a decoded LA32 instruction.
//
// Field use by format:
//   - R-type (ALU): Rd = dest, Rs1/Rs2 = sources.
//   - I-type (ALU-imm, loads): Rd = dest, Rs1 = source/base, Imm = immediate.
//   - Stores: Rd = data register, Rs1 = base, Imm = displacement.
//   - Branches: Rd and Rs1 are compared, Imm = instruction offset.
//   - JMP/CALL: Imm = instruction offset. JR/CALLR: Rs1 = target register.
//   - SYS: Imm = syscall number.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended 16-bit immediate
}

// Encoding layout (little-endian word):
//
//	bits 31..24  opcode
//	bits 23..20  rd
//	bits 19..16  rs1
//	bits 15..0   imm16 (I-type)  -- or --  bits 15..12 rs2 (R-type)
//
// R-type and I-type share the word; rs2 and imm overlap, which is harmless
// because no opcode uses both.

// Encode packs i into its 32-bit binary form. Immediates outside the signed
// 16-bit range are rejected.
func Encode(i Instr) (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: encode %s: register out of range", i.Op)
	}
	if i.Imm < -32768 || i.Imm > 32767 {
		return 0, fmt.Errorf("isa: encode %s: immediate %d out of 16-bit range", i.Op, i.Imm)
	}
	w := uint32(i.Op)<<24 | uint32(i.Rd&0xF)<<20 | uint32(i.Rs1&0xF)<<16
	if useRs2(i.Op) {
		w |= uint32(i.Rs2&0xF) << 12
	} else {
		w |= uint32(uint16(i.Imm))
	}
	return w, nil
}

// MustEncode is Encode for statically known-good instructions; it panics on
// error and is intended for tests and generated code.
func MustEncode(i Instr) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit word into an instruction. Unknown opcodes yield an
// error so the VM can raise an illegal-instruction fault.
func Decode(w uint32) (Instr, error) {
	op := Op(w >> 24)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: decode: invalid opcode %d in %#08x", uint8(op), w)
	}
	i := Instr{
		Op:  op,
		Rd:  uint8(w >> 20 & 0xF),
		Rs1: uint8(w >> 16 & 0xF),
	}
	if useRs2(op) {
		i.Rs2 = uint8(w >> 12 & 0xF)
	} else {
		i.Imm = int32(int16(uint16(w)))
	}
	return i, nil
}

// useRs2 reports whether op encodes a second source register (R-type).
func useRs2(op Op) bool {
	switch op.Class() {
	case ClassALU2:
		return true
	}
	return false
}

// ReadsMem reports whether the instruction reads memory.
func (i Instr) ReadsMem() bool { return i.Op.Class() == ClassLoad }

// WritesMem reports whether the instruction writes memory.
func (i Instr) WritesMem() bool { return i.Op.Class() == ClassStore }

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassMove:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case ClassImm:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case ClassALU2:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case ClassALUImm:
		if i.Op == ORI || i.Op == ANDI || i.Op == XORI {
			// These zero-extend their immediate; print the value the
			// hardware uses.
			return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Rd, i.Rs1, uint16(i.Imm))
		}
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case ClassLoad:
		return fmt.Sprintf("%s r%d, [r%d%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case ClassStore:
		return fmt.Sprintf("%s r%d, [r%d%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case ClassJump:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case ClassJumpInd:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs1)
	case ClassSys:
		return fmt.Sprintf("sys %d", i.Imm)
	case ClassLatch:
		switch i.Op {
		case STNT:
			return fmt.Sprintf("stnt r%d, r%d", i.Rs1, i.Rd)
		default:
			return fmt.Sprintf("%s r%d", i.Op, i.Rd)
		}
	}
	return i.Op.String()
}

// Syscall numbers understood by the VM. These model the taint sources and
// sinks the paper uses: file reads for SPEC workloads, socket operations for
// the network applications, and a write sink for leak detection.
const (
	SysExit   = 1 // r1 = exit code
	SysRead   = 2 // read from file source:  r1=buf, r2=len; returns n in r1
	SysRecv   = 3 // read from socket source: r1=buf, r2=len; returns n in r1
	SysAccept = 4 // accept a connection; returns conn id in r1 (taint policy applies per connection)
	SysWrite  = 5 // write to output sink: r1=buf, r2=len (leak checks apply)
	SysTime   = 6 // returns a deterministic virtual clock in r1
)

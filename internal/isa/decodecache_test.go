package isa

import "testing"

func TestFusibleClassification(t *testing.T) {
	alu := Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}
	imm := Instr{Op: MOVI, Rd: 1, Imm: 7}
	load := Instr{Op: LDW, Rd: 1, Rs1: 2}
	store := Instr{Op: STW, Rd: 1, Rs1: 2}
	branch := Instr{Op: BNE, Rd: 1, Rs1: 2, Imm: -4}
	jmp := Instr{Op: JMP, Imm: -4}
	jr := Instr{Op: JR, Rs1: 1}
	sys := Instr{Op: SYS, Imm: 1}

	cases := []struct {
		name          string
		first, second Instr
		want          FuseKind
	}{
		{"movi+add", imm, alu, FuseALUALU},
		{"alu+branch", alu, branch, FuseALUBranch},
		{"load+alu", load, alu, FuseLoadALU},
		{"load+branch", load, branch, FuseNone}, // second slot after a load must be reg-only
		{"store first", store, alu, FuseNone},   // stores are never fused
		{"alu+store", alu, store, FuseNone},
		{"branch first", branch, alu, FuseNone}, // first slot must not redirect the PC
		{"jmp first", jmp, alu, FuseNone},
		{"alu+jmp", alu, jmp, FuseNone}, // only conditional branches in the second slot
		{"alu+jr", alu, jr, FuseNone},
		{"sys anywhere", alu, sys, FuseNone},
		{"load+load", load, load, FuseNone},
	}
	for _, c := range cases {
		if got := Fusible(c.first, c.second); got != c.want {
			t.Errorf("%s: Fusible = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTryFuseAndLookupFused(t *testing.T) {
	c := NewDecodeCache(64)
	first := Instr{Op: MOVI, Rd: 1, Imm: 5}
	second := Instr{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1}

	c.Insert(0x100, first)
	// Successor not yet cached: no fusion.
	if k := c.TryFuse(0x100); k != FuseNone {
		t.Fatalf("TryFuse without successor = %v", k)
	}
	c.Insert(0x104, second)
	if k := c.TryFuse(0x100); k != FuseALUALU {
		t.Fatalf("TryFuse = %v, want FuseALUALU", k)
	}
	if got := c.Fusions(); got != 1 {
		t.Fatalf("Fusions = %d, want 1", got)
	}
	// Repeated TryFuse reports the existing kind without re-counting.
	if k := c.TryFuse(0x100); k != FuseALUALU {
		t.Fatalf("repeat TryFuse = %v", k)
	}
	if got := c.Fusions(); got != 1 {
		t.Fatalf("Fusions after repeat = %d, want 1", got)
	}

	e, ok := c.LookupFused(0x100)
	if !ok || e.In != first || e.Fuse != FuseALUALU || e.Next != second {
		t.Fatalf("LookupFused = %+v ok=%v", e, ok)
	}
	// The fused copy survives conflict displacement of the successor's slot.
	c.Insert(0x104+uint32(c.Entries())*WordSize, Instr{Op: NOP})
	if e, ok = c.LookupFused(0x100); !ok || e.Next != second {
		t.Fatal("fused successor copy lost to conflict displacement")
	}
}

func TestInsertResetsFusion(t *testing.T) {
	c := NewDecodeCache(64)
	c.Insert(0x100, Instr{Op: MOVI, Rd: 1, Imm: 5})
	c.Insert(0x104, Instr{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1})
	c.TryFuse(0x100)
	// Re-inserting the first PC (e.g. after invalidation and refill) must
	// drop the stale superinstruction and the owner's Aux stamp.
	e, _ := c.LookupFused(0x100)
	e.Aux = 7
	c.Insert(0x100, Instr{Op: SUB, Rd: 3, Rs1: 1, Rs2: 1})
	e, ok := c.LookupFused(0x100)
	if !ok || e.Fuse != FuseNone || e.Aux != 0 {
		t.Fatalf("Insert left stale fusion state: %+v ok=%v", e, ok)
	}
}

func TestInvalidateRangeFusedSpan(t *testing.T) {
	// A fused entry at pc covers [pc, pc+2*WordSize): a write over either
	// word must drop it, a write just past the pair must not.
	for _, wr := range []struct {
		addr uint32
		hit  bool
	}{
		{0x100, true},  // first word
		{0x104, true},  // second word
		{0x107, true},  // last byte of the pair
		{0x108, false}, // first byte past the pair
		{0x0FF, false}, // byte before the pair
	} {
		c := NewDecodeCache(64)
		c.Insert(0x100, Instr{Op: MOVI, Rd: 1, Imm: 5})
		c.Insert(0x104, Instr{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1})
		if c.TryFuse(0x100) == FuseNone {
			t.Fatal("pair did not fuse")
		}
		c.InvalidateRange(wr.addr, wr.addr)
		_, ok := c.LookupFused(0x100)
		if ok == wr.hit {
			t.Errorf("write at %#x: entry survived=%v, want dropped=%v", wr.addr, ok, wr.hit)
		}
	}
}

func TestProbeObservesMutations(t *testing.T) {
	c := NewDecodeCache(64)
	p := c.Probe()
	if _, ok := p.At(0x100); ok {
		t.Fatal("probe hit on empty cache")
	}
	in := Instr{Op: MOVI, Rd: 1, Imm: 5}
	c.Insert(0x100, in)
	e, ok := p.At(0x100)
	if !ok || e.In != in {
		t.Fatal("probe does not observe Insert")
	}
	c.InvalidateRange(0x100, 0x103)
	if _, ok = p.At(0x100); ok {
		t.Fatal("probe does not observe invalidation")
	}
}

func TestAddStats(t *testing.T) {
	c := NewDecodeCache(64)
	c.AddStats(5, 2)
	h, m := c.Stats()
	if h != 5 || m != 2 {
		t.Fatalf("Stats = %d/%d, want 5/2", h, m)
	}
}

package isa

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a program image as annotated assembly: one line per
// word, with absolute addresses, raw encodings, decoded mnemonics (or .word
// for data), and label annotations from the program's symbol table.
func Disassemble(p *Program) string {
	labelsAt := make(map[uint32][]string)
	for name, addr := range p.Labels {
		labelsAt[addr] = append(labelsAt[addr], name)
	}
	for _, names := range labelsAt {
		sort.Strings(names)
	}

	var sb strings.Builder
	for off := 0; off+WordSize <= len(p.Image); off += WordSize {
		addr := p.Origin + uint32(off)
		for _, name := range labelsAt[addr] {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		w := binary.LittleEndian.Uint32(p.Image[off : off+WordSize])
		if in, err := Decode(w); err == nil {
			fmt.Fprintf(&sb, "  %08x:  %08x  %s\n", addr, w, annotate(in, addr, labelsAt))
		} else {
			fmt.Fprintf(&sb, "  %08x:  %08x  .word %#x\n", addr, w, w)
		}
	}
	if tail := len(p.Image) % WordSize; tail != 0 {
		base := len(p.Image) - tail
		addr := p.Origin + uint32(base)
		for _, name := range labelsAt[addr] {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		fmt.Fprintf(&sb, "  %08x:  ", addr)
		for _, b := range p.Image[base:] {
			fmt.Fprintf(&sb, "%02x", b)
		}
		sb.WriteString("  .byte\n")
	}
	return sb.String()
}

// annotate appends resolved branch-target labels to control-flow
// instructions.
func annotate(in Instr, addr uint32, labelsAt map[uint32][]string) string {
	s := in.String()
	switch in.Op.Class() {
	case ClassBranch, ClassJump:
		target := addr + WordSize + uint32(in.Imm)*WordSize
		if names := labelsAt[target]; len(names) > 0 {
			return fmt.Sprintf("%s  ; -> %s", s, names[0])
		}
		return fmt.Sprintf("%s  ; -> %#x", s, target)
	}
	return s
}

package isa

import (
	"bytes"
	"errors"
	"testing"
)

func TestObjectRoundTrip(t *testing.T) {
	p := MustAssemble(`
_start:
	movi r1, 1
loop:
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
data:
	.word 0xCAFEBABE
`)
	var buf bytes.Buffer
	if err := WriteObject(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Origin != p.Origin || q.Entry != p.Entry {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Image, p.Image) {
		t.Fatal("image mismatch")
	}
	if len(q.Labels) != len(p.Labels) {
		t.Fatalf("label counts: %d vs %d", len(q.Labels), len(p.Labels))
	}
	for name, addr := range p.Labels {
		if q.Labels[name] != addr {
			t.Fatalf("label %q: %d vs %d", name, q.Labels[name], addr)
		}
	}
}

func TestObjectWithOrigin(t *testing.T) {
	p := MustAssemble(".org 0x4000\n_start: halt")
	var buf bytes.Buffer
	if err := WriteObject(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Origin != 0x4000 || q.Entry != 0x4000 {
		t.Fatalf("origin/entry = %#x/%#x", q.Origin, q.Entry)
	}
}

func TestObjectErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("LOBJ"), // truncated header
		append([]byte("LOBJ"), 9, 0, 0, 0, 0, 0, 0, 0), // bad version + short
	}
	for i, data := range cases {
		if _, err := ReadObject(bytes.NewReader(data)); !errors.Is(err, ErrBadObject) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Truncated image.
	p := MustAssemble("halt")
	var buf bytes.Buffer
	if err := WriteObject(&buf, p); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadObject(bytes.NewReader(trunc)); !errors.Is(err, ErrBadObject) {
		t.Errorf("truncated object: err = %v", err)
	}
}

func TestObjectUnreasonableSizes(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("LOBJ")
	buf.Write([]byte{1, 0, 0, 0})             // version
	buf.Write([]byte{0, 0, 0, 0})             // origin
	buf.Write([]byte{0, 0, 0, 0})             // entry
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // absurd image length
	buf.Write([]byte{0, 0, 0, 0})             // labels
	if _, err := ReadObject(&buf); !errors.Is(err, ErrBadObject) {
		t.Fatalf("absurd image accepted: %v", err)
	}
}

package isa

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRandomProgramDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	a := RandomProgram(rand.New(rand.NewSource(42)), cfg)
	b := RandomProgram(rand.New(rand.NewSource(42)), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different programs")
	}
	c := RandomProgram(rand.New(rand.NewSource(43)), cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestRandomProgramAlwaysEncodes(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 50; seed++ {
		instrs := RandomProgram(rand.New(rand.NewSource(seed)), cfg)
		if _, err := BuildProgram(cfg.Origin, instrs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomProgramShape(t *testing.T) {
	cfg := DefaultGenConfig()
	instrs := RandomProgram(rand.New(rand.NewSource(7)), cfg)
	if len(instrs) < cfg.Body {
		t.Fatalf("program has %d instructions, want at least the body of %d", len(instrs), cfg.Body)
	}
	// The epilogue guarantees termination: the last instructions include a
	// SYS exit.
	foundExit := false
	for _, in := range instrs[len(instrs)-4:] {
		if in.Op == SYS {
			foundExit = true
		}
	}
	if !foundExit {
		t.Fatal("epilogue has no syscall")
	}
	// Every branch and jump target stays inside the program.
	for i, in := range instrs {
		switch in.Op {
		case BEQ, BNE, BLT, BGE, JMP, CALL:
			target := i + 1 + int(in.Imm)
			if target < 0 || target > len(instrs) {
				t.Fatalf("instr %d (%v) targets %d, outside [0,%d]", i, in.Op, target, len(instrs))
			}
		}
	}
}

func TestRandomProgramZeroConfigFallsBack(t *testing.T) {
	instrs := RandomProgram(rand.New(rand.NewSource(1)), GenConfig{})
	if len(instrs) == 0 {
		t.Fatal("zero config produced an empty program")
	}
}

func TestBuildProgramRejectsBadInstr(t *testing.T) {
	if _, err := BuildProgram(0x1000, []Instr{{Op: opCount}}); err == nil {
		t.Fatal("invalid opcode encoded")
	}
}

package isa

import "math/rand"

// Random program generation for differential checking. RandomProgram emits a
// pseudo-random but *valid* LA32 program from a seeded RNG: every
// instruction encodes, all direct control transfers land on instruction
// boundaries inside the program, and execution terminates (direct branches
// and computed jump targets only go forward, so any loop can come only from
// corrupted indirect jumps — which a step budget bounds deterministically).
// The generated programs exercise the whole taint surface: syscall taint
// sources and sinks, loads/stores over a scratch buffer, the Table 5 LATCH
// extensions, tainted indirect jumps, and — with GenConfig.WildProb — memory
// operations near the top of the 4 GiB address space, where wrapping
// accesses live.
//
// Generation is deterministic in the *rand.Rand alone; internal/diffcheck
// derives that RNG from a case seed so failures replay byte-for-byte.

// Generated-program register convention. The low registers are the mutable
// pool; three high registers are reserved as pointers so random ALU results
// never corrupt an address base.
const (
	genPoolLo  = 1  // first pool register (ALU/load destinations)
	genPoolHi  = 9  // last pool register
	genPtrData = 10 // base of the scratch data buffer, never overwritten
	genPtrRove = 11 // roving pointer: data base plus a bounded drift
	genPtrWild = 12 // wild pointer: data base, or the top of the address space
)

// GenConfig controls RandomProgram.
type GenConfig struct {
	// Body is the approximate number of body instructions (the prologue,
	// epilogue, and multi-instruction idioms add a few more).
	Body int
	// Origin is the load address; entry is the first instruction.
	Origin uint32
	// DataBase is the base address of the scratch buffer loads, stores, and
	// syscall buffers point into.
	DataBase uint32
	// WildProb is the probability that the wild pointer register is aimed at
	// the last bytes of the 4 GiB address space instead of the data buffer,
	// so stores and syscall writes straddle the wrap boundary.
	WildProb float64
}

// DefaultGenConfig returns the geometry diffcheck uses: a body of a few
// hundred instructions, code at 0x1000, data at 1 MiB, and a 30% chance of a
// top-of-memory wild pointer.
func DefaultGenConfig() GenConfig {
	return GenConfig{Body: 256, Origin: 0x1000, DataBase: 0x0010_0000, WildProb: 0.3}
}

// progen carries generation state.
type progen struct {
	rng  *rand.Rand
	cfg  GenConfig
	code []Instr
	// maxTarget is the highest forward jump target (instruction index)
	// emitted so far; the body is NOP-padded out to it before the epilogue
	// so every target stays inside the program.
	maxTarget int
}

// imm16 reinterprets a raw 16-bit pattern as the sign-extended immediate the
// encoder expects (LUI 0xFFFF encodes as -1).
func imm16(v uint16) int32 { return int32(int16(v)) }

// RandomProgram generates a valid, terminating LA32 instruction sequence
// from rng under cfg. Encode accepts every emitted instruction.
func RandomProgram(rng *rand.Rand, cfg GenConfig) []Instr {
	if cfg.Body <= 0 {
		cfg = DefaultGenConfig()
	}
	g := &progen{rng: rng, cfg: cfg}
	g.prologue()
	for body := 0; body < cfg.Body; body++ {
		g.bodyInstr()
	}
	for len(g.code) < g.maxTarget {
		g.emit(Instr{Op: NOP})
	}
	g.epilogue()
	return g.code
}

// BuildProgram encodes instrs into a loadable program at origin.
func BuildProgram(origin uint32, instrs []Instr) (*Program, error) {
	image := make([]byte, 0, len(instrs)*WordSize)
	for _, in := range instrs {
		w, err := Encode(in)
		if err != nil {
			return nil, err
		}
		image = append(image, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return &Program{Origin: origin, Entry: origin, Image: image}, nil
}

func (g *progen) emit(in Instr) { g.code = append(g.code, in) }

// pool returns a random pool register.
func (g *progen) pool() uint8 {
	return uint8(genPoolLo + g.rng.Intn(genPoolHi-genPoolLo+1))
}

// src returns a random source register: usually a pool register, sometimes a
// pointer or the conventional zero.
func (g *progen) src() uint8 {
	if g.rng.Float64() < 0.15 {
		return uint8(g.rng.Intn(genPtrWild + 1))
	}
	return g.pool()
}

// base picks an addressing base register, steering mostly at the data
// buffer; wildShare is the probability of the wild pointer.
func (g *progen) base(wildShare float64) uint8 {
	r := g.rng.Float64()
	switch {
	case r < wildShare:
		return genPtrWild
	case r < wildShare+(1-wildShare)/2:
		return genPtrData
	default:
		return genPtrRove
	}
}

// loadPtr emits the LUI/ORI pair materializing a 32-bit constant.
func (g *progen) loadPtr(rd uint8, v uint32) {
	g.emit(Instr{Op: LUI, Rd: rd, Imm: imm16(uint16(v >> 16))})
	g.emit(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: imm16(uint16(v))})
}

// prologue sets up the register convention and pulls in external input so
// taint exists from the start.
func (g *progen) prologue() {
	g.emit(Instr{Op: MOVI, Rd: 0, Imm: 0})
	g.loadPtr(genPtrData, g.cfg.DataBase)
	g.emit(Instr{Op: MOV, Rd: genPtrRove, Rs1: genPtrData})
	if g.rng.Float64() < g.cfg.WildProb {
		// Aim the wild pointer at the last 256 bytes of the address space so
		// multi-byte accesses straddle the 4 GiB wrap.
		g.loadPtr(genPtrWild, 0xFFFF_FF00|uint32(g.rng.Intn(256)))
	} else {
		g.emit(Instr{Op: MOV, Rd: genPtrWild, Rs1: genPtrData})
	}
	// Read file input into the data buffer, then accept and read one request.
	g.emit(Instr{Op: MOV, Rd: 1, Rs1: genPtrData})
	g.emit(Instr{Op: MOVI, Rd: 2, Imm: 64})
	g.emit(Instr{Op: SYS, Imm: SysRead})
	g.emit(Instr{Op: SYS, Imm: SysAccept})
	g.emit(Instr{Op: MOV, Rd: 1, Rs1: genPtrRove})
	g.emit(Instr{Op: MOVI, Rd: 2, Imm: 32})
	g.emit(Instr{Op: SYS, Imm: SysRecv})
	// Seed a few pool registers, including one tainted load.
	g.emit(Instr{Op: MOVI, Rd: g.pool(), Imm: int32(g.rng.Intn(65536) - 32768)})
	g.emit(Instr{Op: LDW, Rd: g.pool(), Rs1: genPtrData, Imm: int32(g.rng.Intn(64))})
}

// epilogue drains the buffer through the output sink and exits.
func (g *progen) epilogue() {
	g.emit(Instr{Op: MOV, Rd: 1, Rs1: genPtrData})
	g.emit(Instr{Op: MOVI, Rd: 2, Imm: 32})
	g.emit(Instr{Op: SYS, Imm: SysWrite})
	g.emit(Instr{Op: MOVI, Rd: 1, Imm: int32(g.rng.Intn(128))})
	g.emit(Instr{Op: SYS, Imm: SysExit})
}

// bodyInstr emits one random body idiom (one or more instructions).
func (g *progen) bodyInstr() {
	switch p := g.rng.Float64(); {
	case p < 0.22:
		g.alu2()
	case p < 0.38:
		g.aluImm()
	case p < 0.52:
		g.load()
	case p < 0.66:
		g.store()
	case p < 0.71:
		// Bounded roving-pointer drift; stays far away from the code pages.
		g.emit(Instr{Op: ADDI, Rd: genPtrRove, Rs1: genPtrRove, Imm: int32(g.rng.Intn(129) - 64)})
	case p < 0.80:
		g.branch()
	case p < 0.88:
		g.syscall()
	case p < 0.91:
		g.emit(Instr{Op: STNT, Rs1: g.base(0.08), Rd: g.src()})
	case p < 0.93:
		g.emit(Instr{Op: STRF, Rd: g.pool()})
	case p < 0.94:
		g.emit(Instr{Op: LTNT, Rd: g.pool()})
	default:
		g.jump()
	}
}

var alu2Ops = []Op{ADD, SUB, AND, OR, XOR, SHL, SHR, SAR, MUL, DIVU, SLT, SLTU}

func (g *progen) alu2() {
	in := Instr{Op: alu2Ops[g.rng.Intn(len(alu2Ops))], Rd: g.pool(), Rs1: g.src(), Rs2: g.src()}
	if g.rng.Float64() < 0.05 {
		in.Rs2 = in.Rs1 // xor r,a,a-style taint clears
	}
	g.emit(in)
}

func (g *progen) aluImm() {
	imm := int32(g.rng.Intn(65536) - 32768)
	switch g.rng.Intn(5) {
	case 0:
		g.emit(Instr{Op: MOVI, Rd: g.pool(), Imm: imm})
	case 1:
		g.emit(Instr{Op: MOV, Rd: g.pool(), Rs1: g.src()})
	case 2:
		g.emit(Instr{Op: ADDI, Rd: g.pool(), Rs1: g.src(), Imm: imm})
	case 3:
		g.emit(Instr{Op: ANDI, Rd: g.pool(), Rs1: g.src(), Imm: imm})
	case 4:
		g.emit(Instr{Op: XORI, Rd: g.pool(), Rs1: g.src(), Imm: imm})
	}
}

// memImm returns a displacement for the chosen base: small for the wild
// pointer (to stay near the wrap boundary), page-crossing for the others.
func (g *progen) memImm(base uint8) int32 {
	if base == genPtrWild {
		return int32(g.rng.Intn(256))
	}
	return int32(g.rng.Intn(1152) - 128)
}

var loadOps = []Op{LDB, LDH, LDW}
var storeOps = []Op{STB, STH, STW}

func (g *progen) load() {
	base := g.base(0.12)
	g.emit(Instr{Op: loadOps[g.rng.Intn(3)], Rd: g.pool(), Rs1: base, Imm: g.memImm(base)})
}

func (g *progen) store() {
	base := g.base(0.15)
	g.emit(Instr{Op: storeOps[g.rng.Intn(3)], Rd: g.src(), Rs1: base, Imm: g.memImm(base)})
}

var branchOps = []Op{BEQ, BNE, BLT, BGE}

func (g *progen) branch() {
	off := 1 + g.rng.Intn(8)
	g.note(len(g.code) + 1 + off)
	g.emit(Instr{Op: branchOps[g.rng.Intn(4)], Rd: g.src(), Rs1: g.src(), Imm: int32(off)})
}

// jump emits a direct or computed forward control transfer.
func (g *progen) jump() {
	if g.rng.Float64() < 0.5 {
		op := JMP
		if g.rng.Float64() < 0.3 {
			op = CALL
		}
		off := 1 + g.rng.Intn(8)
		g.note(len(g.code) + 1 + off)
		g.emit(Instr{Op: op, Imm: int32(off)})
		return
	}
	// Computed jump: materialize a forward in-program address, then JR (or
	// CALLR). A small fraction adds a pool register to the target first:
	// when that register is zero the jump is a plain forward transfer; when
	// it holds tainted input the DIFT engine flags the transfer, and a
	// nonzero clean value sends the PC somewhere deterministic — typically
	// an illegal-instruction fault both sides of a differential run share.
	addend := g.rng.Float64() < 0.15
	jrAt := len(g.code) + 1
	if addend {
		jrAt++
	}
	targetIdx := jrAt + 1 + g.rng.Intn(12)
	target := g.cfg.Origin + uint32(targetIdx)*WordSize
	if target > 32767 {
		g.emit(Instr{Op: NOP}) // out of MOVI range on huge bodies; skip
		return
	}
	g.note(targetIdx)
	g.emit(Instr{Op: MOVI, Rd: RegTMP, Imm: int32(target)})
	if addend {
		g.emit(Instr{Op: ADD, Rd: RegTMP, Rs1: RegTMP, Rs2: g.pool()})
	}
	op := JR
	if g.rng.Float64() < 0.25 {
		op = CALLR
	}
	g.emit(Instr{Op: op, Rs1: RegTMP})
}

// syscall emits a complete syscall idiom with sane argument registers.
func (g *progen) syscall() {
	switch g.rng.Intn(5) {
	case 0: // file read, occasionally through the wild pointer
		g.emit(Instr{Op: MOV, Rd: 1, Rs1: g.base(0.20)})
		g.emit(Instr{Op: MOVI, Rd: 2, Imm: int32(1 + g.rng.Intn(48))})
		g.emit(Instr{Op: SYS, Imm: SysRead})
	case 1:
		g.emit(Instr{Op: MOV, Rd: 1, Rs1: g.base(0.10)})
		g.emit(Instr{Op: MOVI, Rd: 2, Imm: int32(1 + g.rng.Intn(32))})
		g.emit(Instr{Op: SYS, Imm: SysRecv})
	case 2:
		g.emit(Instr{Op: SYS, Imm: SysAccept})
	case 3: // output sink: leak checks fire on tainted buffers
		g.emit(Instr{Op: MOV, Rd: 1, Rs1: g.base(0.05)})
		g.emit(Instr{Op: MOVI, Rd: 2, Imm: int32(g.rng.Intn(33))})
		g.emit(Instr{Op: SYS, Imm: SysWrite})
	case 4:
		g.emit(Instr{Op: SYS, Imm: SysTime})
	}
}

// note records a forward target so padding keeps it inside the program.
func (g *progen) note(targetIdx int) {
	if targetIdx > g.maxTarget {
		g.maxTarget = targetIdx
	}
}

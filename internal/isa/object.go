package isa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Object file format for assembled LA32 programs ("LOBJ"): lets programs be
// assembled once with latch-asm and executed or disassembled later.
//
//	header: "LOBJ" magic, uint16 version, uint16 reserved,
//	        uint32 origin, uint32 entry, uint32 image length,
//	        uint32 label count
//	body:   image bytes, then labels as {uint16 name length, name bytes,
//	        uint32 address}, sorted by name
const (
	objectMagic   = "LOBJ"
	objectVersion = 1
)

// ErrBadObject reports a malformed object stream.
var ErrBadObject = errors.New("isa: malformed object file")

// WriteObject serializes a program.
func WriteObject(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(objectMagic); err != nil {
		return err
	}
	hdr := []any{
		uint16(objectVersion), uint16(0),
		p.Origin, p.Entry, uint32(len(p.Image)), uint32(len(p.Labels)),
	}
	for _, f := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if _, err := bw.Write(p.Image); err != nil {
		return err
	}
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(name) > 0xFFFF {
			return fmt.Errorf("isa: label %q too long", name[:32])
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Labels[name]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObject deserializes a program.
func ReadObject(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadObject, err)
	}
	if string(magic[:]) != objectMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadObject, magic)
	}
	var version, reserved uint16
	var origin, entry, imageLen, labelCount uint32
	for _, dst := range []any{&version, &reserved, &origin, &entry, &imageLen, &labelCount} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadObject, err)
		}
	}
	if version != objectVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadObject, version)
	}
	const maxImage = 1 << 28
	if imageLen > maxImage || labelCount > 1<<20 {
		return nil, fmt.Errorf("%w: unreasonable sizes (image %d, labels %d)", ErrBadObject, imageLen, labelCount)
	}
	p := &Program{
		Origin: origin,
		Entry:  entry,
		Image:  make([]byte, imageLen),
		Labels: make(map[string]uint32, labelCount),
	}
	if _, err := io.ReadFull(br, p.Image); err != nil {
		return nil, fmt.Errorf("%w: truncated image: %v", ErrBadObject, err)
	}
	for i := uint32(0); i < labelCount; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: label %d: %v", ErrBadObject, i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: label %d name: %v", ErrBadObject, i, err)
		}
		var addr uint32
		if err := binary.Read(br, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("%w: label %d addr: %v", ErrBadObject, i, err)
		}
		p.Labels[string(name)] = addr
	}
	return p, nil
}

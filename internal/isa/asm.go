package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled LA32 image.
type Program struct {
	Origin uint32            // load address of Image[0]
	Image  []byte            // raw bytes (instructions and data)
	Labels map[string]uint32 // label -> absolute byte address
	Entry  uint32            // address of the "_start" label, or Origin
}

// Assemble translates LA32 assembly source into a Program.
//
// Syntax summary:
//
//	; comment           # comment
//	label:              (may share a line with an instruction)
//	add r1, r2, r3      movi r1, -5       ldw r1, [r2+8]
//	beq r1, r2, label   jmp label         call label
//	li  r1, 0x12345678  li r1, =label     (pseudo: LUI+ORI or MOVI)
//	ret                                    (pseudo: jr lr)
//	.org 0x1000         .word 1, 2        .byte 1, 2
//	.space 64           .ascii "text"
//
// Registers: r0..r15, sp (r13), lr (r14).
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels: make(map[string]uint32),
	}
	lines := strings.Split(src, "\n")

	// Pass 1: compute label addresses.
	if err := a.scan(lines, true); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	if err := a.scan(lines, false); err != nil {
		return nil, err
	}
	p := &Program{
		Origin: a.origin,
		Image:  a.image,
		Labels: a.labels,
		Entry:  a.origin,
	}
	if e, ok := a.labels["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for tests and fixed
// built-in workload programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	origin    uint32
	originSet bool
	pc        uint32 // current absolute address
	image     []byte
	labels    map[string]uint32
	emitting  bool
	line      int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) scan(lines []string, firstPass bool) error {
	a.pc = 0
	a.originSet = false
	a.emitting = !firstPass
	if !firstPass {
		a.image = a.image[:0]
	}
	for n, raw := range lines {
		a.line = n + 1
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return a.errf("invalid label %q", label)
			}
			if firstPass {
				if _, dup := a.labels[label]; dup {
					return a.errf("duplicate label %q", label)
				}
				a.labels[label] = a.pc
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(line, firstPass); err != nil {
			return err
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) statement(line string, firstPass bool) error {
	mnemonic, rest := line, ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)

	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(mnemonic, rest)
	}
	return a.instruction(mnemonic, rest, firstPass)
}

func (a *assembler) directive(name, rest string) error {
	switch name {
	case ".org":
		v, err := a.evalImm(rest, false)
		if err != nil {
			return err
		}
		addr := uint32(v)
		if !a.originSet {
			a.origin = addr
			a.originSet = true
			a.pc = addr
			return nil
		}
		if addr < a.pc {
			return a.errf(".org %#x moves backwards (pc=%#x)", addr, a.pc)
		}
		a.pad(addr - a.pc)
		return nil
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.evalImm(f, true)
			if err != nil {
				return err
			}
			a.emit32(uint32(v))
		}
		return nil
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.evalImm(f, true)
			if err != nil {
				return err
			}
			if v < -128 || v > 255 {
				return a.errf(".byte value %d out of range", v)
			}
			a.emit8(byte(v))
		}
		return nil
	case ".space":
		v, err := a.evalImm(rest, false)
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf(".space negative size")
		}
		a.pad(uint32(v))
		return nil
	case ".ascii":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf(".ascii: %v", err)
		}
		for i := 0; i < len(s); i++ {
			a.emit8(s[i])
		}
		return nil
	}
	return a.errf("unknown directive %s", name)
}

var mnemonicOps = func() map[string]Op {
	m := make(map[string]Op)
	for op := Op(0); op < opCount; op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) instruction(mnemonic, rest string, firstPass bool) error {
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mnemonic {
	case "li":
		if len(ops) != 2 {
			return a.errf("li needs 2 operands")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		arg := strings.TrimSpace(ops[1])
		if strings.HasPrefix(arg, "=") {
			// Address-of-label: always two instructions so pass-1 sizing is
			// stable before labels are known.
			var v uint32
			if !firstPass {
				addr, ok := a.labels[arg[1:]]
				if !ok {
					return a.errf("undefined label %q", arg[1:])
				}
				v = addr
			}
			a.emitInstr(Instr{Op: LUI, Rd: rd, Imm: int32(int16(v >> 16))})
			a.emitInstr(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(int16(uint16(v)))})
			return nil
		}
		v, err := a.evalImm(arg, false)
		if err != nil {
			return err
		}
		if v >= -32768 && v <= 32767 {
			a.emitInstr(Instr{Op: MOVI, Rd: rd, Imm: int32(v)})
			return nil
		}
		u := uint32(v)
		a.emitInstr(Instr{Op: LUI, Rd: rd, Imm: int32(int16(u >> 16))})
		a.emitInstr(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(int16(uint16(u)))})
		return nil
	case "ret":
		a.emitInstr(Instr{Op: JR, Rs1: RegLR})
		return nil
	}

	op, ok := mnemonicOps[mnemonic]
	if !ok {
		return a.errf("unknown mnemonic %q", mnemonic)
	}
	in := Instr{Op: op}
	var err error
	switch op.Class() {
	case ClassNop, ClassHalt:
		if len(ops) != 0 {
			return a.errf("%s takes no operands", op)
		}
	case ClassMove:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(ops[1]); err != nil {
			return err
		}
	case ClassImm:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		v, err := a.evalImm(ops[1], false)
		if err != nil {
			return err
		}
		imm, err := a.imm16(op, v)
		if err != nil {
			return err
		}
		in.Imm = imm
	case ClassALU2:
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(ops[2]); err != nil {
			return err
		}
	case ClassALUImm:
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(ops[1]); err != nil {
			return err
		}
		v, err := a.evalImm(ops[2], false)
		if err != nil {
			return err
		}
		imm, err := a.imm16(op, v)
		if err != nil {
			return err
		}
		in.Imm = imm
	case ClassLoad, ClassStore:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		base, disp, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		in.Rs1, in.Imm = base, disp
	case ClassBranch:
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", op)
		}
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(ops[1]); err != nil {
			return err
		}
		off, err := a.branchTarget(ops[2], firstPass)
		if err != nil {
			return err
		}
		in.Imm = off
	case ClassJump:
		if len(ops) != 1 {
			return a.errf("%s needs 1 operand", op)
		}
		off, err := a.branchTarget(ops[0], firstPass)
		if err != nil {
			return err
		}
		in.Imm = off
	case ClassJumpInd:
		if len(ops) != 1 {
			return a.errf("%s needs 1 operand", op)
		}
		if in.Rs1, err = a.reg(ops[0]); err != nil {
			return err
		}
	case ClassSys:
		if len(ops) != 1 {
			return a.errf("sys needs 1 operand")
		}
		v, err := a.evalImm(ops[0], false)
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case ClassLatch:
		switch op {
		case STNT:
			if len(ops) != 2 {
				return a.errf("stnt needs 2 operands (addr reg, tag reg)")
			}
			if in.Rs1, err = a.reg(ops[0]); err != nil {
				return err
			}
			if in.Rd, err = a.reg(ops[1]); err != nil {
				return err
			}
		default: // STRF, LTNT
			if len(ops) != 1 {
				return a.errf("%s needs 1 operand", op)
			}
			if in.Rd, err = a.reg(ops[0]); err != nil {
				return err
			}
		}
	}
	a.emitInstr(in)
	return nil
}

// imm16 range-checks a 16-bit immediate for op. Zero-extending ops (ori,
// andi, xori, lui) accept 0..0xFFFF as well as negative literals; the rest
// take the signed range.
func (a *assembler) imm16(op Op, v int64) (int32, error) {
	zeroExtends := op == ORI || op == ANDI || op == XORI || op == LUI
	if zeroExtends {
		if v < -32768 || v > 65535 {
			return 0, a.errf("%s immediate %d out of 16-bit range", op, v)
		}
		return int32(int16(uint16(v))), nil
	}
	if v < -32768 || v > 32767 {
		return 0, a.errf("%s immediate %d out of signed 16-bit range", op, v)
	}
	return int32(v), nil
}

// branchTarget resolves a label or numeric offset to an instruction-count
// offset relative to the next instruction.
func (a *assembler) branchTarget(arg string, firstPass bool) (int32, error) {
	arg = strings.TrimSpace(arg)
	if addr, ok := a.labels[arg]; ok || (firstPass && isIdent(arg) && !isNumeric(arg)) {
		if firstPass && !ok {
			return 0, nil // forward reference; resolved in pass 2
		}
		delta := int64(addr) - int64(a.pc) - WordSize
		if delta%WordSize != 0 {
			return 0, a.errf("branch target %q not instruction-aligned", arg)
		}
		off := delta / WordSize
		if off < -32768 || off > 32767 {
			return 0, a.errf("branch to %q out of range (%d instructions)", arg, off)
		}
		return int32(off), nil
	}
	if isIdent(arg) && !isNumeric(arg) {
		return 0, a.errf("undefined label %q", arg)
	}
	v, err := a.evalImm(arg, false)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '-' || c == '+' || (c >= '0' && c <= '9')
}

func (a *assembler) reg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return RegSP, nil
	case "lr":
		return RegLR, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), nil
		}
	}
	return 0, a.errf("invalid register %q", s)
}

// memOperand parses "[rN]", "[rN+disp]" or "[rN-disp]".
func (a *assembler) memOperand(s string) (base uint8, disp int32, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("invalid memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:i], inner[i+1:]
	}
	base, err = a.reg(regPart)
	if err != nil {
		return 0, 0, err
	}
	if dispPart != "" {
		v, err := a.evalImm(dispPart, false)
		if err != nil {
			return 0, 0, err
		}
		v *= sign
		if v < -32768 || v > 32767 {
			return 0, 0, a.errf("displacement %d out of range", v)
		}
		disp = int32(v)
	}
	return base, disp, nil
}

// evalImm parses an immediate: decimal, 0x hex, 'c' char, or (when
// allowLabel) a label name resolving to its address.
func (a *assembler) evalImm(s string, allowLabel bool) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("missing immediate")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, a.errf("invalid char literal %s", s)
		}
		return int64(body[0]), nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, a.errf("immediate %d out of 32-bit range", v)
		}
		return v, nil
	}
	if allowLabel && isIdent(s) {
		if addr, ok := a.labels[s]; ok {
			return int64(addr), nil
		}
		if a.emitting {
			return 0, a.errf("undefined label %q", s)
		}
		return 0, nil // pass 1: size-stable placeholder
	}
	return 0, a.errf("invalid immediate %q", s)
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Split on commas that are not inside quotes or brackets.
	var out []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inQuote {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *assembler) pad(n uint32) {
	if a.emitting {
		a.image = append(a.image, make([]byte, n)...)
	}
	a.pc += n
}

func (a *assembler) emit8(b byte) {
	if a.emitting {
		a.image = append(a.image, b)
	}
	a.pc++
}

func (a *assembler) emit32(w uint32) {
	if a.emitting {
		a.image = append(a.image, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	a.pc += 4
}

func (a *assembler) emitInstr(i Instr) {
	if !a.emitting {
		a.pc += WordSize
		return
	}
	w, err := Encode(i)
	if err != nil {
		// Encoding failures here are assembler bugs (operand ranges are
		// validated during parsing), but surface them loudly.
		panic(fmt.Sprintf("asm: line %d: %v", a.line, err))
	}
	a.emit32(w)
}

package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

// decodeAt decodes the instruction at byte offset off of p's image.
func decodeAt(t *testing.T, p *Program, off int) Instr {
	t.Helper()
	w := binary.LittleEndian.Uint32(p.Image[off : off+4])
	in, err := Decode(w)
	if err != nil {
		t.Fatalf("decode at %d: %v", off, err)
	}
	return in
}

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; a trivial program
		movi r1, 42
		add  r2, r1, r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Image) != 12 {
		t.Fatalf("image size = %d, want 12", len(p.Image))
	}
	if in := decodeAt(t, p, 0); in != (Instr{Op: MOVI, Rd: 1, Imm: 42}) {
		t.Errorf("instr 0 = %v", in)
	}
	if in := decodeAt(t, p, 4); in != (Instr{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1}) {
		t.Errorf("instr 1 = %v", in)
	}
	if in := decodeAt(t, p, 8); in.Op != HALT {
		t.Errorf("instr 2 = %v", in)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
_start:
		movi r1, 3
loop:	addi r1, r1, -1
		bne  r1, r0, loop
		jmp  done
		halt           ; skipped
done:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 {
		t.Fatalf("entry = %#x", p.Entry)
	}
	// bne at offset 8: target loop=4, next pc=12, offset=(4-12)/4=-2.
	if in := decodeAt(t, p, 8); in.Imm != -2 {
		t.Errorf("bne offset = %d, want -2", in.Imm)
	}
	// jmp at offset 12: target done=20, next=16, offset=1.
	if in := decodeAt(t, p, 12); in.Imm != 1 {
		t.Errorf("jmp offset = %d, want 1", in.Imm)
	}
	if p.Labels["done"] != 20 {
		t.Errorf("done = %d", p.Labels["done"])
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := MustAssemble(`
		ldw r1, [r2]
		ldw r1, [r2+8]
		stb r3, [sp-4]
	`)
	if in := decodeAt(t, p, 0); in.Imm != 0 || in.Rs1 != 2 {
		t.Errorf("ldw [r2] = %v", in)
	}
	if in := decodeAt(t, p, 4); in.Imm != 8 {
		t.Errorf("ldw [r2+8] = %v", in)
	}
	if in := decodeAt(t, p, 8); in.Imm != -4 || in.Rs1 != RegSP || in.Rd != 3 {
		t.Errorf("stb [sp-4] = %v", in)
	}
}

func TestAssembleLiSmallAndLarge(t *testing.T) {
	p := MustAssemble(`
		li r1, 100
		li r2, 0x12345678
		halt
	`)
	// li small -> 1 instruction; li large -> 2.
	if in := decodeAt(t, p, 0); in.Op != MOVI || in.Imm != 100 {
		t.Errorf("small li = %v", in)
	}
	if in := decodeAt(t, p, 4); in.Op != LUI || uint16(in.Imm) != 0x1234 {
		t.Errorf("large li hi = %v", in)
	}
	if in := decodeAt(t, p, 8); in.Op != ORI || uint16(in.Imm) != 0x5678 {
		t.Errorf("large li lo = %v", in)
	}
	if in := decodeAt(t, p, 12); in.Op != HALT {
		t.Errorf("expected halt, got %v", in)
	}
}

func TestAssembleLiLabelAddress(t *testing.T) {
	p := MustAssemble(`
		li r1, =data
		halt
data:	.word 0xCAFEBABE
	`)
	// li =label is always 2 instructions; data at 12.
	if p.Labels["data"] != 12 {
		t.Fatalf("data = %d", p.Labels["data"])
	}
	hi := decodeAt(t, p, 0)
	lo := decodeAt(t, p, 4)
	addr := uint32(uint16(hi.Imm))<<16 | uint32(uint16(lo.Imm))
	if addr != 12 {
		t.Errorf("li =data resolved to %d", addr)
	}
}

func TestAssembleDirectives(t *testing.T) {
	p := MustAssemble(`
		.org 0x1000
		.word 1, 2, 3
		.byte 0xFF, 'A'
		.space 2
		.ascii "hi"
	`)
	if p.Origin != 0x1000 {
		t.Fatalf("origin = %#x", p.Origin)
	}
	want := []byte{
		1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0,
		0xFF, 'A',
		0, 0,
		'h', 'i',
	}
	if len(p.Image) != len(want) {
		t.Fatalf("image len = %d, want %d", len(p.Image), len(want))
	}
	for i := range want {
		if p.Image[i] != want[i] {
			t.Fatalf("image[%d] = %#x, want %#x", i, p.Image[i], want[i])
		}
	}
}

func TestAssembleWordWithLabel(t *testing.T) {
	p := MustAssemble(`
		jmp over
table:	.word table, over
over:	halt
	`)
	tableAddr := p.Labels["table"]
	got := binary.LittleEndian.Uint32(p.Image[tableAddr : tableAddr+4])
	if got != tableAddr {
		t.Errorf(".word table = %d, want %d", got, tableAddr)
	}
	got2 := binary.LittleEndian.Uint32(p.Image[tableAddr+4 : tableAddr+8])
	if got2 != p.Labels["over"] {
		t.Errorf(".word over = %d, want %d", got2, p.Labels["over"])
	}
}

func TestAssembleRetPseudo(t *testing.T) {
	p := MustAssemble("ret")
	if in := decodeAt(t, p, 0); in.Op != JR || in.Rs1 != RegLR {
		t.Errorf("ret = %v", in)
	}
}

func TestAssembleLatchInstrs(t *testing.T) {
	p := MustAssemble(`
		strf r1
		stnt r2, r3
		ltnt r4
	`)
	if in := decodeAt(t, p, 0); in.Op != STRF || in.Rd != 1 {
		t.Errorf("strf = %v", in)
	}
	if in := decodeAt(t, p, 4); in.Op != STNT || in.Rs1 != 2 || in.Rd != 3 {
		t.Errorf("stnt = %v", in)
	}
	if in := decodeAt(t, p, 8); in.Op != LTNT || in.Rd != 4 {
		t.Errorf("ltnt = %v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"bogus r1", "unknown mnemonic"},
		{"add r1, r2", "needs 3 operands"},
		{"movi r99, 1", "invalid register"},
		{"jmp nowhere", "undefined label"},
		{"ldw r1, r2", "invalid memory operand"},
		{"x: \n x: nop", "duplicate label"},
		{".org 8\n.org 4", "moves backwards"},
		{".byte 300", "out of range"},
		{"9bad: nop", "invalid label"},
		{"movi r1, zzz", "invalid immediate"},
		{".bogus 1", "unknown directive"},
		{"li r1", "needs 2 operands"},
		{"li r1, =nowhere", "undefined label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Assemble(%q) err = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestAssembleBranchOffsetNumeric(t *testing.T) {
	p := MustAssemble("jmp -1") // tight infinite loop
	if in := decodeAt(t, p, 0); in.Imm != -1 {
		t.Errorf("jmp -1 = %v", in)
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble(`
	; full line comment
	# hash comment

	nop ; trailing
	nop # trailing hash
	`)
	if len(p.Image) != 8 {
		t.Fatalf("image len = %d, want 8", len(p.Image))
	}
}

func TestAssembleCharImmediate(t *testing.T) {
	p := MustAssemble("movi r1, 'Z'")
	if in := decodeAt(t, p, 0); in.Imm != 'Z' {
		t.Errorf("char imm = %d", in.Imm)
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := MustAssemble("a: b: nop")
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels = %v", p.Labels)
	}
}

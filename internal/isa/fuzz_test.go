package isa

import (
	"testing"
)

// FuzzAssemble checks that the assembler never panics and that whatever it
// accepts round-trips through the decoder.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"movi r1, 42\nhalt",
		"loop: addi r1, r1, -1\nbne r1, r0, loop",
		".org 0x1000\n.word 1, 2, 3\n.ascii \"hi\"",
		"li r1, =data\ndata: .byte 1",
		"ldw r1, [sp-4]\nstw r1, [r2+8]",
		"x: y: nop ; comment",
		"strf r1\nstnt r2, r3\nltnt r4",
		".space 17\ncall fn\nfn: ret",
		"jmp -1",
		"sys 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted output must be loadable: every full word that was
		// emitted as an instruction either decodes or is data. We at least
		// require the image length to match the PC accounting.
		if len(p.Image) > 1<<24 {
			t.Fatalf("unreasonable image size %d", len(p.Image))
		}
		for label, addr := range p.Labels {
			if int64(addr) > int64(p.Origin)+int64(len(p.Image)) {
				t.Fatalf("label %q at %#x beyond image end", label, addr)
			}
		}
	})
}

// FuzzDecode checks that Decode never panics and that every successfully
// decoded instruction re-encodes to a word that decodes identically
// (idempotence of the decoded form).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(MustEncode(Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(MustEncode(Instr{Op: LDW, Rd: 1, Rs1: 2, Imm: -4}))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded instruction %v does not re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Fatalf("round trip unstable: %v -> %v (%v)", in, in2, err)
		}
		_ = in.String() // must not panic
	})
}

package isa

import (
	"testing"
)

// FuzzAssemble checks that the assembler never panics and that whatever it
// accepts round-trips through the decoder.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"movi r1, 42\nhalt",
		"loop: addi r1, r1, -1\nbne r1, r0, loop",
		".org 0x1000\n.word 1, 2, 3\n.ascii \"hi\"",
		"li r1, =data\ndata: .byte 1",
		"ldw r1, [sp-4]\nstw r1, [r2+8]",
		"x: y: nop ; comment",
		"strf r1\nstnt r2, r3\nltnt r4",
		".space 17\ncall fn\nfn: ret",
		"jmp -1",
		"sys 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted output must be loadable: every full word that was
		// emitted as an instruction either decodes or is data. We at least
		// require the image length to match the PC accounting.
		if len(p.Image) > 1<<24 {
			t.Fatalf("unreasonable image size %d", len(p.Image))
		}
		for label, addr := range p.Labels {
			if int64(addr) > int64(p.Origin)+int64(len(p.Image)) {
				t.Fatalf("label %q at %#x beyond image end", label, addr)
			}
		}
	})
}

// FuzzAssembleDecode drives the encoder from arbitrary field values and
// asserts decode(encode(x)) == x for everything Encode accepts, and that
// malformed instructions come back as errors, never panics. The one
// normalization allowed: R-type and I-type share the low word bits, so the
// field the format does not encode (Imm for R-type, Rs2 for I-type) reads
// back as zero.
func FuzzAssembleDecode(f *testing.F) {
	f.Add(uint8(ADD), uint8(1), uint8(2), uint8(3), int32(0))
	f.Add(uint8(LDW), uint8(1), uint8(2), uint8(0), int32(-4))
	f.Add(uint8(SYS), uint8(0), uint8(0), uint8(0), int32(2))
	f.Add(uint8(0xFF), uint8(0), uint8(0), uint8(0), int32(0))        // invalid op
	f.Add(uint8(ADD), uint8(16), uint8(0), uint8(0), int32(0))        // register out of range
	f.Add(uint8(ADDI), uint8(0), uint8(0), uint8(0), int32(1<<20))    // immediate out of range
	f.Add(uint8(BEQ), uint8(15), uint8(15), uint8(15), int32(-32768)) // extreme-but-legal
	f.Fuzz(func(t *testing.T, op, rd, rs1, rs2 uint8, imm int32) {
		in := Instr{Op: Op(op), Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
		w, err := Encode(in)
		if err != nil {
			// Encode must reject exactly the documented malformed cases.
			if in.Op.Valid() && rd < NumRegs && rs1 < NumRegs && rs2 < NumRegs &&
				imm >= -32768 && imm <= 32767 {
				t.Fatalf("well-formed %+v rejected: %v", in, err)
			}
			return
		}
		// Zero the field the chosen format does not carry: it is validated
		// by Encode but not stored in the word.
		want := in
		if useRs2(in.Op) {
			want.Imm = 0
		} else {
			want.Rs2 = 0
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("encoded %+v (%#08x) does not decode: %v", in, w, err)
		}
		if got != want {
			t.Fatalf("round trip lost information: %+v -> %#08x -> %+v (want %+v)", in, w, got, want)
		}
		_ = got.String() // must not panic

		// The decode cache must agree with direct Decode for every word the
		// decoder accepts — on the initial fill, after invalidation of the
		// entry's range, and after a refill. The PC is derived from the word
		// so the fuzzer also exercises conflict slots of the tiny cache.
		dc := NewDecodeCache(16)
		pc := (w % 4096) &^ 3
		if _, hit := dc.Lookup(pc); hit {
			t.Fatalf("empty cache hit at pc=%#x", pc)
		}
		dc.Insert(pc, got)
		cached, hit := dc.Lookup(pc)
		if !hit || cached != got {
			t.Fatalf("cache disagrees with Decode: %+v vs %+v (hit=%v)", cached, got, hit)
		}
		// A write to any byte of the instruction word must drop the entry.
		dc.InvalidateRange(pc+WordSize-1, pc+WordSize-1)
		if _, hit := dc.Lookup(pc); hit {
			t.Fatalf("entry at pc=%#x survived invalidation of its last byte", pc)
		}
		reDecoded, err := Decode(w)
		if err != nil {
			t.Fatalf("re-decode of %#08x failed: %v", w, err)
		}
		dc.Insert(pc, reDecoded)
		if cached, hit := dc.Lookup(pc); !hit || cached != got {
			t.Fatalf("refilled cache disagrees with Decode: %+v vs %+v (hit=%v)", cached, got, hit)
		}
		dc.Flush()
		if _, hit := dc.Lookup(pc); hit {
			t.Fatalf("entry at pc=%#x survived Flush", pc)
		}
		hits, misses := dc.Stats()
		if hits != 2 || misses != 3 {
			t.Fatalf("stats = %d hits, %d misses; want 2, 3", hits, misses)
		}
	})
}

// FuzzDecode checks that Decode never panics and that every successfully
// decoded instruction re-encodes to a word that decodes identically
// (idempotence of the decoded form).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(MustEncode(Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(MustEncode(Instr{Op: LDW, Rd: 1, Rs1: 2, Imm: -4}))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded instruction %v does not re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Fatalf("round trip unstable: %v -> %v (%v)", in, in2, err)
		}
		_ = in.String() // must not panic
	})
}

package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()

	m.CoarseCheck(LevelTLB, false, false)
	m.CoarseCheck(LevelCTC, false, false)
	m.CoarseCheck(LevelPrecise, true, true)
	m.CoarseCheck(LevelPrecise, true, false)

	m.CacheMiss(CacheTLB)
	m.CacheMiss(CacheCTC)
	m.CacheMiss(CacheCTC)
	m.CacheMiss(CacheTCache)

	m.CacheEviction(CacheCTC, false)
	m.CacheEviction(CacheCTC, true)

	m.EpochTransition(ModeSoftware, 100)
	m.EpochTransition(ModeHardware, 200)
	m.EpochTransition(ModeSoftware, 300)

	m.QueueStall(5)
	m.QueueStall(9)
	m.QueueStall(2)

	m.Violation(ViolationControlFlow, 0x10, 0x20)
	m.Violation(ViolationLeak, 0x30, 0x40)

	m.TaintSource(SourceFile, 16)
	m.TaintSource(SourceNet, 4)
	m.TaintSource(SourceNet, -1) // ignored

	s := m.Snapshot()
	want := Snapshot{
		CoarseChecks:    4,
		ResolvedTLB:     1,
		ResolvedCTC:     1,
		ResolvedPrecise: 2,
		CoarsePositives: 2,
		FalsePositives:  1,

		TLBMisses:    1,
		CTCMisses:    2,
		TCacheMisses: 1,

		CTCEvictions:             2,
		CTCEvictionsPendingClear: 1,

		SwitchesToSoftware: 2,
		SwitchesToHardware: 1,

		QueueStalls:   3,
		QueueMaxDepth: 9,

		ControlFlowViolations: 1,
		LeakViolations:        1,

		FileSourceBytes: 16,
		NetSourceBytes:  4,
	}
	if s != want {
		t.Errorf("snapshot mismatch:\n got  %+v\n want %+v", s, want)
	}

	m.Reset()
	if got := m.Snapshot(); got != (Snapshot{}) {
		t.Errorf("after Reset, snapshot = %+v, want zero", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.CoarseCheck(LevelTLB, false, false)
				m.QueueStall(w*perWorker + i)
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.CoarseChecks != workers*perWorker {
		t.Errorf("CoarseChecks = %d, want %d", s.CoarseChecks, workers*perWorker)
	}
	if s.QueueStalls != workers*perWorker {
		t.Errorf("QueueStalls = %d, want %d", s.QueueStalls, workers*perWorker)
	}
	if want := uint64(workers*perWorker - 1); s.QueueMaxDepth != want {
		t.Errorf("QueueMaxDepth = %d, want %d", s.QueueMaxDepth, want)
	}
}

func TestMulti(t *testing.T) {
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}

	a := NewMetrics()
	if got := Multi(nil, a); got != Observer(a) {
		t.Errorf("Multi(nil, a) should return a directly, got %T", got)
	}

	b := NewMetrics()
	fan := Multi(a, b)
	fan.CoarseCheck(LevelCTC, true, false)
	fan.CacheMiss(CacheTLB)
	fan.CacheEviction(CacheCTC, true)
	fan.EpochTransition(ModeSoftware, 1)
	fan.QueueStall(3)
	fan.Violation(ViolationLeak, 1, 2)
	fan.TaintSource(SourceNet, 8)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Errorf("fan-out divergence:\n a %+v\n b %+v", sa, sb)
	}
	if sa.CoarseChecks != 1 || sa.TLBMisses != 1 || sa.CTCEvictionsPendingClear != 1 ||
		sa.SwitchesToSoftware != 1 || sa.QueueStalls != 1 || sa.LeakViolations != 1 ||
		sa.NetSourceBytes != 8 {
		t.Errorf("fan-out missed events: %+v", sa)
	}
}

func TestSnapshotJSONKeys(t *testing.T) {
	m := NewMetrics()
	m.CoarseCheck(LevelPrecise, true, false)
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]uint64
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"coarse_checks", "resolved_tlb", "resolved_ctc", "resolved_precise",
		"coarse_positives", "false_positives", "tlb_misses", "ctc_misses",
		"tcache_misses", "ctc_evictions", "ctc_evictions_pending_clear",
		"switches_to_software", "switches_to_hardware", "queue_stalls",
		"queue_max_stall_depth", "control_flow_violations", "leak_violations",
		"file_source_bytes", "net_source_bytes",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing key %q", key)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct{ got, want string }{
		{LevelTLB.String(), "tlb"},
		{LevelCTC.String(), "ctc"},
		{LevelPrecise.String(), "t-cache"},
		{CacheTLB.String(), "tlb"},
		{CacheCTC.String(), "ctc"},
		{CacheTCache.String(), "t-cache"},
		{ModeHardware.String(), "hardware"},
		{ModeSoftware.String(), "software"},
		{ViolationControlFlow.String(), "control-flow"},
		{ViolationLeak.String(), "leak"},
		{SourceFile.String(), "file"},
		{SourceNet.String(), "net"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestMetricsEmissionsDoNotAllocate(t *testing.T) {
	m := NewMetrics()
	allocs := testing.AllocsPerRun(1000, func() {
		m.CoarseCheck(LevelPrecise, true, false)
		m.CacheMiss(CacheCTC)
		m.CacheEviction(CacheCTC, true)
		m.EpochTransition(ModeSoftware, 42)
		m.QueueStall(7)
		m.Violation(ViolationLeak, 1, 2)
		m.TaintSource(SourceFile, 64)
	})
	if allocs != 0 {
		t.Errorf("Metrics emissions allocate %.1f per run, want 0", allocs)
	}
}

// Package telemetry is the unified observability layer of the LATCH
// reproduction: a zero-allocation Observer interface that every simulation
// layer emits its runtime events through, and a snapshotable Metrics
// registry that aggregates those events into the counter vocabulary of the
// paper's evaluation (Figure 16's resolve levels, Table 6's miss events,
// Figure 14's mode transitions, §5.2's queue behavior).
//
// Design rules, enforced by benchmarks in internal/latch:
//
//   - every Observer method takes only scalar arguments, so an emission
//     never allocates;
//   - emitters hold the observer in a plain interface field and guard each
//     emission with a nil check, so the unobserved hot path costs exactly
//     one predictable branch;
//   - Metrics uses atomic counters, so one registry may be attached to any
//     number of concurrently running independent modules (the experiment
//     harness attaches one registry per simulation pass while jobs fan out
//     across the worker pool).
//
// The facade re-exports the types needed to attach or implement an
// observer; see latch.New and latch.WithObserver.
package telemetry

import "sync/atomic"

// Level identifies the element of the coarse-checking stack that resolved a
// memory check — the three categories of Figure 16. The values mirror
// internal/latch.ResolveLevel.
type Level uint8

// Resolve levels.
const (
	LevelTLB     Level = iota // filtered by the TLB page taint bits
	LevelCTC                  // filtered by the Coarse Taint Cache
	LevelPrecise              // coarse positive: precise taint cache consulted
	NumLevels
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelTLB:
		return "tlb"
	case LevelCTC:
		return "ctc"
	case LevelPrecise:
		return "t-cache"
	}
	return "unknown"
}

// Cache identifies a hardware structure of the checking stack.
type Cache uint8

// Caches.
const (
	CacheTLB Cache = iota
	CacheCTC
	CacheTCache
	// CacheDecode is the VM's decoded-instruction cache — the simulation
	// analog of a DBT code cache (Pin's, in the paper's software layer).
	CacheDecode
	// CacheMemTLC is the paged memory's one-entry page translation cache.
	CacheMemTLC
	NumCaches
)

// String names the cache.
func (c Cache) String() string {
	switch c {
	case CacheTLB:
		return "tlb"
	case CacheCTC:
		return "ctc"
	case CacheTCache:
		return "t-cache"
	case CacheDecode:
		return "decode"
	case CacheMemTLC:
		return "mem-tlc"
	}
	return "unknown"
}

// Mode is an execution layer of a two-mode integration (S-LATCH's hardware
// monitoring vs. instrumented software DIFT).
type Mode uint8

// Modes.
const (
	ModeHardware Mode = iota
	ModeSoftware
	NumModes
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHardware {
		return "hardware"
	}
	return "software"
}

// ViolationKind classifies DIFT policy violations; values mirror
// internal/dift.ViolationKind.
type ViolationKind uint8

// Violation kinds.
const (
	ViolationControlFlow ViolationKind = iota
	ViolationLeak
	NumViolationKinds
)

// String names the kind.
func (k ViolationKind) String() string {
	if k == ViolationControlFlow {
		return "control-flow"
	}
	return "leak"
}

// Source identifies a taint input source; values mirror
// internal/dift.InputSource.
type Source uint8

// Sources.
const (
	SourceFile Source = iota
	SourceNet
	NumSources
)

// String names the source.
func (s Source) String() string {
	if s == SourceFile {
		return "file"
	}
	return "net"
}

// Observer receives the runtime events of the LATCH stack. Implementations
// must be cheap and must not retain references across calls; all arguments
// are scalars so emissions never allocate. An implementation attached to
// concurrently running modules must be safe for concurrent use (Metrics
// is).
//
// Observers are strictly passive: no emitter consults an observer's state,
// so attaching one can never change simulation results — the golden
// experiment tables are byte-identical with and without an observer.
type Observer interface {
	// CoarseCheck reports one resolved memory-operand taint check: the
	// stack element that resolved it (Figure 16), whether the coarse state
	// flagged the access, and whether that flag was a false positive.
	CoarseCheck(level Level, positive, falsePositive bool)

	// CacheMiss reports a miss in one of the checking stack's caches.
	CacheMiss(c Cache)

	// CacheBatch reports an accumulated batch of hits and misses for cache
	// c. Hot loops that cannot afford one interface call per cache access
	// (the VM's fetch path, the memory translation cache) count locally and
	// flush deltas through this method at run boundaries.
	CacheBatch(c Cache, hits, misses uint64)

	// CacheEviction reports a block displaced from a cache; pendingClears
	// is true when an evicted CTC line carried asserted clear bits (which
	// triggers the §5.1.4 scan).
	CacheEviction(c Cache, pendingClears bool)

	// EpochTransition reports a mode switch of a two-mode integration;
	// instret is the emitting layer's instruction (or event) count at the
	// switch.
	EpochTransition(to Mode, instret uint64)

	// FastLoop reports accumulated fast-loop activity of the VM's
	// taint-free interpreter path: epoch entries, exits back to the full
	// loop, and instructions retired while resident. Like CacheBatch, the
	// counts are deltas flushed at run boundaries, keeping the fast loop
	// itself free of interface calls.
	FastLoop(entries, exits, steps uint64)

	// QueueStall reports the monitored core stalling on a full log FIFO
	// (P-LATCH, §5.2); depth is the queue occupancy at the stall.
	QueueStall(depth int)

	// Violation reports a DIFT policy violation.
	Violation(kind ViolationKind, pc, addr uint32)

	// TaintSource reports n bytes of external data arriving from a taint
	// source (the syscall boundary, before policy filtering).
	TaintSource(src Source, n int)
}

// Metrics is the canonical Observer: a registry of atomic counters
// unifying the event streams of every instrumented package. It is safe to
// attach one Metrics to any number of concurrently running modules; the
// zero value is ready for use.
type Metrics struct {
	checks         atomic.Uint64
	resolved       [NumLevels]atomic.Uint64
	positives      atomic.Uint64
	falsePositives atomic.Uint64

	hits          [NumCaches]atomic.Uint64
	misses        [NumCaches]atomic.Uint64
	evictions     [NumCaches]atomic.Uint64
	pendingClears atomic.Uint64 // CTC evictions with clear bits outstanding

	transitions [NumModes]atomic.Uint64

	fastEntries atomic.Uint64
	fastExits   atomic.Uint64
	fastSteps   atomic.Uint64

	queueStalls   atomic.Uint64
	queueMaxDepth atomic.Uint64

	violations [NumViolationKinds]atomic.Uint64

	sourceBytes [NumSources]atomic.Uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

var _ Observer = (*Metrics)(nil)

// CoarseCheck implements Observer.
func (m *Metrics) CoarseCheck(level Level, positive, falsePositive bool) {
	m.checks.Add(1)
	if level < NumLevels {
		m.resolved[level].Add(1)
	}
	if positive {
		m.positives.Add(1)
	}
	if falsePositive {
		m.falsePositives.Add(1)
	}
}

// CacheMiss implements Observer.
func (m *Metrics) CacheMiss(c Cache) {
	if c < NumCaches {
		m.misses[c].Add(1)
	}
}

// CacheBatch implements Observer.
func (m *Metrics) CacheBatch(c Cache, hits, misses uint64) {
	if c >= NumCaches {
		return
	}
	if hits > 0 {
		m.hits[c].Add(hits)
	}
	if misses > 0 {
		m.misses[c].Add(misses)
	}
}

// CacheEviction implements Observer.
func (m *Metrics) CacheEviction(c Cache, pendingClears bool) {
	if c < NumCaches {
		m.evictions[c].Add(1)
	}
	if pendingClears {
		m.pendingClears.Add(1)
	}
}

// EpochTransition implements Observer.
func (m *Metrics) EpochTransition(to Mode, instret uint64) {
	if to < NumModes {
		m.transitions[to].Add(1)
	}
}

// FastLoop implements Observer.
func (m *Metrics) FastLoop(entries, exits, steps uint64) {
	if entries > 0 {
		m.fastEntries.Add(entries)
	}
	if exits > 0 {
		m.fastExits.Add(exits)
	}
	if steps > 0 {
		m.fastSteps.Add(steps)
	}
}

// QueueStall implements Observer.
func (m *Metrics) QueueStall(depth int) {
	m.queueStalls.Add(1)
	d := uint64(depth)
	for {
		cur := m.queueMaxDepth.Load()
		if d <= cur || m.queueMaxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Violation implements Observer.
func (m *Metrics) Violation(kind ViolationKind, pc, addr uint32) {
	if kind < NumViolationKinds {
		m.violations[kind].Add(1)
	}
}

// TaintSource implements Observer.
func (m *Metrics) TaintSource(src Source, n int) {
	if src < NumSources && n > 0 {
		m.sourceBytes[src].Add(uint64(n))
	}
}

// Snapshot is a consistent-enough copy of the registry (individual counters
// are read atomically; cross-counter invariants hold exactly once emitters
// are quiescent). The field set is the union of the counters previously
// scattered across the per-package Stats structs, in JSON-friendly form.
type Snapshot struct {
	CoarseChecks    uint64 `json:"coarse_checks"`
	ResolvedTLB     uint64 `json:"resolved_tlb"`
	ResolvedCTC     uint64 `json:"resolved_ctc"`
	ResolvedPrecise uint64 `json:"resolved_precise"`
	CoarsePositives uint64 `json:"coarse_positives"`
	FalsePositives  uint64 `json:"false_positives"`

	TLBMisses    uint64 `json:"tlb_misses"`
	CTCMisses    uint64 `json:"ctc_misses"`
	TCacheMisses uint64 `json:"tcache_misses"`

	DecodeCacheHits   uint64 `json:"decode_cache_hits"`
	DecodeCacheMisses uint64 `json:"decode_cache_misses"`
	MemTLCHits        uint64 `json:"mem_tlc_hits"`
	MemTLCMisses      uint64 `json:"mem_tlc_misses"`

	CTCEvictions             uint64 `json:"ctc_evictions"`
	CTCEvictionsPendingClear uint64 `json:"ctc_evictions_pending_clear"`

	SwitchesToSoftware uint64 `json:"switches_to_software"`
	SwitchesToHardware uint64 `json:"switches_to_hardware"`

	FastLoopEntries uint64 `json:"fast_loop_entries"`
	FastLoopExits   uint64 `json:"fast_loop_exits"`
	FastLoopSteps   uint64 `json:"fast_loop_steps"`

	QueueStalls   uint64 `json:"queue_stalls"`
	QueueMaxDepth uint64 `json:"queue_max_stall_depth"`

	ControlFlowViolations uint64 `json:"control_flow_violations"`
	LeakViolations        uint64 `json:"leak_violations"`

	FileSourceBytes uint64 `json:"file_source_bytes"`
	NetSourceBytes  uint64 `json:"net_source_bytes"`
}

// Snapshot reads the registry.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		CoarseChecks:    m.checks.Load(),
		ResolvedTLB:     m.resolved[LevelTLB].Load(),
		ResolvedCTC:     m.resolved[LevelCTC].Load(),
		ResolvedPrecise: m.resolved[LevelPrecise].Load(),
		CoarsePositives: m.positives.Load(),
		FalsePositives:  m.falsePositives.Load(),

		TLBMisses:    m.misses[CacheTLB].Load(),
		CTCMisses:    m.misses[CacheCTC].Load(),
		TCacheMisses: m.misses[CacheTCache].Load(),

		DecodeCacheHits:   m.hits[CacheDecode].Load(),
		DecodeCacheMisses: m.misses[CacheDecode].Load(),
		MemTLCHits:        m.hits[CacheMemTLC].Load(),
		MemTLCMisses:      m.misses[CacheMemTLC].Load(),

		CTCEvictions:             m.evictions[CacheCTC].Load(),
		CTCEvictionsPendingClear: m.pendingClears.Load(),

		SwitchesToSoftware: m.transitions[ModeSoftware].Load(),
		SwitchesToHardware: m.transitions[ModeHardware].Load(),

		FastLoopEntries: m.fastEntries.Load(),
		FastLoopExits:   m.fastExits.Load(),
		FastLoopSteps:   m.fastSteps.Load(),

		QueueStalls:   m.queueStalls.Load(),
		QueueMaxDepth: m.queueMaxDepth.Load(),

		ControlFlowViolations: m.violations[ViolationControlFlow].Load(),
		LeakViolations:        m.violations[ViolationLeak].Load(),

		FileSourceBytes: m.sourceBytes[SourceFile].Load(),
		NetSourceBytes:  m.sourceBytes[SourceNet].Load(),
	}
}

// Reset zeroes every counter.
func (m *Metrics) Reset() { *m = Metrics{} }

// multi fans every event out to a fixed set of observers.
type multi []Observer

// Multi returns an observer forwarding each event to every non-nil
// observer in obs, in order. With zero or one live observer it returns nil
// or that observer directly, keeping the single-observer emission path
// free of indirection.
func Multi(obs ...Observer) Observer {
	live := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// CoarseCheck implements Observer.
func (ms multi) CoarseCheck(level Level, positive, falsePositive bool) {
	for _, o := range ms {
		o.CoarseCheck(level, positive, falsePositive)
	}
}

// CacheMiss implements Observer.
func (ms multi) CacheMiss(c Cache) {
	for _, o := range ms {
		o.CacheMiss(c)
	}
}

// CacheBatch implements Observer.
func (ms multi) CacheBatch(c Cache, hits, misses uint64) {
	for _, o := range ms {
		o.CacheBatch(c, hits, misses)
	}
}

// CacheEviction implements Observer.
func (ms multi) CacheEviction(c Cache, pendingClears bool) {
	for _, o := range ms {
		o.CacheEviction(c, pendingClears)
	}
}

// EpochTransition implements Observer.
func (ms multi) EpochTransition(to Mode, instret uint64) {
	for _, o := range ms {
		o.EpochTransition(to, instret)
	}
}

// FastLoop implements Observer.
func (ms multi) FastLoop(entries, exits, steps uint64) {
	for _, o := range ms {
		o.FastLoop(entries, exits, steps)
	}
}

// QueueStall implements Observer.
func (ms multi) QueueStall(depth int) {
	for _, o := range ms {
		o.QueueStall(depth)
	}
}

// Violation implements Observer.
func (ms multi) Violation(kind ViolationKind, pc, addr uint32) {
	for _, o := range ms {
		o.Violation(kind, pc, addr)
	}
}

// TaintSource implements Observer.
func (ms multi) TaintSource(src Source, n int) {
	for _, o := range ms {
		o.TaintSource(src, n)
	}
}
